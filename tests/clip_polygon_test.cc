// Unit & property tests for the Greiner–Hormann boolean-geometry
// clipper, cross-validated against the exact measure-only operators,
// plus convex hull and ring simplification.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geom/boolean_ops.h"
#include "geom/clip_polygon.h"
#include "geom/hull.h"
#include "geom/predicates.h"

namespace geoalign::geom {
namespace {

double TotalArea(const std::vector<Ring>& rings) { return RingsArea(rings); }

TEST(ClipPolygons, OverlappingSquares) {
  Polygon a({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  Polygon b({{1, 1}, {3, 1}, {3, 3}, {1, 3}});
  auto inter = std::move(ClipPolygons(a, b, BooleanOp::kIntersection)).ValueOrDie();
  ASSERT_EQ(inter.size(), 1u);
  EXPECT_NEAR(RingArea(inter[0]), 1.0, 1e-12);
  auto uni = std::move(ClipPolygons(a, b, BooleanOp::kUnion)).ValueOrDie();
  ASSERT_EQ(uni.size(), 1u);
  EXPECT_NEAR(RingArea(uni[0]), 7.0, 1e-12);
  auto diff = std::move(ClipPolygons(a, b, BooleanOp::kDifference)).ValueOrDie();
  EXPECT_NEAR(TotalArea(diff), 3.0, 1e-12);
}

TEST(ClipPolygons, ResultRingsAreCcw) {
  Polygon a({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  Polygon b({{1, 1}, {3, 1}, {3, 3}, {1, 3}});
  for (BooleanOp op : {BooleanOp::kIntersection, BooleanOp::kUnion,
                       BooleanOp::kDifference}) {
    auto res = std::move(ClipPolygons(a, b, op)).ValueOrDie();
    for (const Ring& r : res) {
      EXPECT_GT(SignedRingArea(r), 0.0);
    }
  }
}

TEST(ClipPolygons, DisjointCases) {
  Polygon a({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Polygon b({{5, 5}, {6, 5}, {6, 6}, {5, 6}});
  EXPECT_TRUE(std::move(ClipPolygons(a, b, BooleanOp::kIntersection)).ValueOrDie().empty());
  EXPECT_EQ(std::move(ClipPolygons(a, b, BooleanOp::kUnion)).ValueOrDie().size(), 2u);
  auto diff = std::move(ClipPolygons(a, b, BooleanOp::kDifference)).ValueOrDie();
  ASSERT_EQ(diff.size(), 1u);
  EXPECT_NEAR(RingArea(diff[0]), 1.0, 1e-12);
}

TEST(ClipPolygons, ContainmentCases) {
  Polygon outer({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  Polygon inner({{1, 1}, {2, 1}, {2, 2}, {1, 2}});
  auto inter = std::move(ClipPolygons(outer, inner, BooleanOp::kIntersection)).ValueOrDie();
  ASSERT_EQ(inter.size(), 1u);
  EXPECT_NEAR(RingArea(inter[0]), 1.0, 1e-12);
  auto uni = std::move(ClipPolygons(inner, outer, BooleanOp::kUnion)).ValueOrDie();
  ASSERT_EQ(uni.size(), 1u);
  EXPECT_NEAR(RingArea(uni[0]), 16.0, 1e-12);
  // A \ B with B strictly inside A needs holes -> explicit error.
  EXPECT_FALSE(ClipPolygons(outer, inner, BooleanOp::kDifference).ok());
  // A strictly inside B: difference is empty.
  EXPECT_TRUE(std::move(ClipPolygons(inner, outer, BooleanOp::kDifference)).ValueOrDie().empty());
}

TEST(ClipPolygons, DifferenceCanSplitIntoMultipleRings) {
  // A horizontal bar minus a vertical bar -> two pieces.
  Polygon bar({{0, 1}, {5, 1}, {5, 2}, {0, 2}});
  Polygon cutter({{2, -1}, {3, -1}, {3, 4}, {2, 4}});
  auto diff = std::move(ClipPolygons(bar, cutter, BooleanOp::kDifference)).ValueOrDie();
  EXPECT_EQ(diff.size(), 2u);
  EXPECT_NEAR(TotalArea(diff), 5.0 - 1.0, 1e-12);
}

TEST(ClipPolygons, DegenerateContactRejected) {
  // Shared edge.
  Polygon a({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Polygon b({{1, 0}, {2, 0}, {2, 1}, {1, 1}});
  auto res = ClipPolygons(a, b, BooleanOp::kIntersection);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kFailedPrecondition);
  // Vertex exactly on the other boundary.
  Polygon touching({{1, 0.5}, {3, 0.2}, {3, 0.8}});
  EXPECT_FALSE(ClipPolygons(a, touching, BooleanOp::kIntersection).ok());
}

TEST(ClipPolygons, HolesUnsupported) {
  Ring outer = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  Ring hole = {{1, 1}, {2, 1}, {2, 2}, {1, 2}};
  Polygon donut = std::move(Polygon::Create(outer, {hole})).ValueOrDie();
  Polygon plain({{0, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(
      ClipPolygons(donut, plain, BooleanOp::kIntersection).status().code(),
      StatusCode::kUnimplemented);
}

TEST(ClipPolygons, PerturbRingEscapesDegeneracy) {
  Polygon a({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  // Vertex exactly on a's right edge.
  Ring bad = {{2.0, 1.0}, {4.0, 0.5}, {4.0, 1.5}};
  EXPECT_FALSE(ClipPolygons(a, Polygon(bad), BooleanOp::kIntersection).ok());
  Ring jittered = PerturbRing(bad, 1e-9, 7);
  auto res = ClipPolygons(a, Polygon(jittered), BooleanOp::kIntersection);
  EXPECT_TRUE(res.ok());
}

// Property sweep: areas of the traversal output must match the exact
// measure operators for random convex and star-shaped operand pairs.
class ClipPolygonsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ClipPolygonsPropertyTest, AreasMatchMeasureOracle) {
  Rng rng(4200 + GetParam());
  auto random_poly = [&rng]() {
    // Star-shaped (possibly non-convex) polygon around a center.
    Point c{rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
    int n = 5 + static_cast<int>(rng.UniformInt(uint64_t{8}));
    Ring ring;
    for (int i = 0; i < n; ++i) {
      double ang = 2.0 * M_PI * i / n + rng.Uniform(0.0, 0.3);
      double rad = rng.Uniform(0.6, 2.0);
      ring.push_back({c.x + rad * std::cos(ang), c.y + rad * std::sin(ang)});
    }
    return Polygon(ring);
  };
  Polygon a = random_poly();
  Polygon b = random_poly();
  struct Case {
    BooleanOp op;
    double want;
  };
  const Case cases[] = {
      {BooleanOp::kIntersection, IntersectionArea(a, b)},
      {BooleanOp::kUnion, UnionArea(a, b)},
      {BooleanOp::kDifference, DifferenceArea(a, b)},
  };
  for (const Case& c : cases) {
    auto res = ClipPolygons(a, b, c.op);
    if (!res.ok()) {
      // Degenerate random contact is legitimate to reject — but must
      // be the documented error, not a wrong answer.
      EXPECT_EQ(res.status().code(), StatusCode::kFailedPrecondition);
      continue;
    }
    EXPECT_NEAR(TotalArea(*res), c.want, 1e-9 + 1e-9 * c.want)
        << "op " << static_cast<int>(c.op);
    // Every result vertex lies on a boundary or inside both/either.
    for (const Ring& ring : *res) {
      EXPECT_GE(ring.size(), 3u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ClipPolygonsPropertyTest,
                         ::testing::Range(0, 40));

TEST(ClipPolygons, UnionWithEnclosedHole) {
  // Two interlocking C shapes whose union encloses a void: the result
  // must carry a CW hole ring that RingsArea subtracts and
  // AssembleRings nests.
  Polygon left_c({{0, 0}, {3, 0}, {3, 0.9}, {1, 0.9}, {1, 2.1}, {3, 2.1},
                  {3, 3}, {0, 3}});
  Polygon right_c({{3.2, -0.2}, {4, -0.2}, {4, 3.2}, {0.5, 3.2},
                   {0.5, 2.5}, {3.2, 2.5}});
  // Shift/shape the second so the pair interlocks around (2, 1.5).
  Polygon ring_closer({{2.5, 0.4}, {4, 0.4}, {4, 2.6}, {2.5, 2.6},
                       {2.5, 1.9}, {3.4, 1.9}, {3.4, 1.1}, {2.5, 1.1}});
  auto uni = ClipPolygons(left_c, ring_closer, BooleanOp::kUnion);
  ASSERT_TRUE(uni.ok()) << uni.status().ToString();
  EXPECT_NEAR(RingsArea(*uni), UnionArea(left_c, ring_closer), 1e-9);
  bool has_hole = false;
  for (const Ring& r : *uni) {
    if (SignedRingArea(r) < 0.0) has_hole = true;
  }
  EXPECT_TRUE(has_hole);
  auto polys = AssembleRings(*uni);
  ASSERT_TRUE(polys.ok()) << polys.status().ToString();
  double area = 0.0;
  for (const Polygon& p : *polys) area += p.Area();
  EXPECT_NEAR(area, UnionArea(left_c, ring_closer), 1e-9);
}

TEST(ClipPolygons, AssembleRingsRejectsOrphanHole) {
  Ring cw = {{0, 0}, {0, 1}, {1, 1}, {1, 0}};  // clockwise
  EXPECT_FALSE(AssembleRings({cw}).ok());
}

TEST(ConvexHull, KnownSquareWithInteriorPoints) {
  std::vector<Point> pts = {{0, 0}, {2, 0}, {2, 2}, {0, 2},
                            {1, 1}, {0.5, 1.2}, {1.7, 0.3}};
  Ring hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(RingArea(hull), 4.0, 1e-12);
  EXPECT_GT(SignedRingArea(hull), 0.0);  // CCW
}

TEST(ConvexHull, CollinearPointsDropped) {
  std::vector<Point> pts = {{0, 0}, {1, 0}, {2, 0}, {2, 2}, {1, 1}};
  Ring hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHull, DegenerateInputs) {
  EXPECT_TRUE(ConvexHull({}).empty());
  EXPECT_EQ(ConvexHull({{1, 1}, {1, 1}}).size(), 1u);
  EXPECT_EQ(ConvexHull({{0, 0}, {1, 1}}).size(), 2u);
}

TEST(ConvexHull, ContainsAllInputPoints) {
  Rng rng(5);
  std::vector<Point> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.Gaussian(0.0, 2.0), rng.Gaussian(0.0, 2.0)});
  }
  Ring hull = ConvexHull(pts);
  Polygon hull_poly(hull);
  EXPECT_TRUE(hull_poly.IsConvex());
  for (const Point& p : pts) {
    EXPECT_TRUE(PointInRing(p, hull));
  }
}

TEST(SimplifyRing, DropsNearCollinearVertices) {
  Ring ring = {{0, 0},   {1, 0.001}, {2, 0},   {2, 1},
               {2, 2},   {1, 2.001}, {0, 2},   {0, 1}};
  Ring simple = SimplifyRing(ring, 0.01);
  EXPECT_LT(simple.size(), ring.size());
  EXPECT_NEAR(RingArea(simple), RingArea(ring), 0.05);
  // Tight tolerance keeps every vertex that deviates at all; the two
  // exactly-collinear vertices ((2,1) and (0,1)) are always dropped.
  EXPECT_EQ(SimplifyRing(ring, 1e-9).size(), 6u);
}

TEST(SimplifyRing, NeverBelowTriangle) {
  Ring ring = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Ring simple = SimplifyRing(ring, 100.0);
  EXPECT_GE(simple.size(), 3u);
}

TEST(SimplifyRing, PreservesAreaWithinTolerance) {
  // A circle sampled densely simplifies to far fewer vertices with
  // bounded area loss.
  Ring circle;
  for (int i = 0; i < 360; ++i) {
    double t = i * M_PI / 180.0;
    circle.push_back({10.0 * std::cos(t), 10.0 * std::sin(t)});
  }
  Ring simple = SimplifyRing(circle, 0.05);
  EXPECT_LT(simple.size(), 120u);
  EXPECT_NEAR(RingArea(simple), RingArea(circle),
              0.01 * RingArea(circle));
}

}  // namespace
}  // namespace geoalign::geom
