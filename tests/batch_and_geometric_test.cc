// Tests for the batch crosswalk API and the geometric-path universe,
// including the batch-vs-individual equivalence guarantee and the
// agreement between the geometric and crosswalk-file pipelines.

#include <gtest/gtest.h>

#include <cmath>

#include "core/areal_weighting.h"
#include "core/batch.h"
#include "core/geoalign.h"
#include "eval/metrics.h"
#include "linalg/simplex_ls.h"
#include "synth/geometric_universe.h"
#include "synth/universe.h"

namespace geoalign {
namespace {

const synth::Universe& SmallUniverse() {
  static synth::Universe* uni = [] {
    synth::UniverseOptions opts;
    opts.scale = 0.08;
    opts.seed = 555;
    opts.suite = synth::SuiteKind::kUnitedStates;
    return new synth::Universe(std::move(
        synth::BuildUniverse(synth::UniverseId::kNewYork, opts)).ValueOrDie());
  }();
  return *uni;
}

TEST(SimplexLsNormalEquations, MatchesDirectForm) {
  Rng rng(77);
  linalg::Matrix a(40, 5);
  for (size_t i = 0; i < 40; ++i) {
    for (size_t j = 0; j < 5; ++j) a(i, j) = rng.Uniform(0.0, 1.0);
  }
  linalg::Vector b(40);
  for (double& v : b) v = rng.Uniform(0.0, 1.0);
  auto direct = std::move(linalg::SolveSimplexLeastSquares(a, b)).ValueOrDie();
  auto normal = std::move(linalg::SolveSimplexLsFromNormalEquations(
      a.Gram(), a.MatTVec(b), linalg::Dot(b, b))).ValueOrDie();
  EXPECT_TRUE(linalg::AllClose(direct.beta, normal.beta, 1e-10));
  EXPECT_NEAR(direct.residual_norm, normal.residual_norm, 1e-8);
}

TEST(SimplexLsNormalEquations, ValidatesShapes) {
  linalg::Matrix gram(2, 3);
  EXPECT_FALSE(
      linalg::SolveSimplexLsFromNormalEquations(gram, {1.0, 2.0}, 1.0).ok());
  linalg::Matrix ok_gram = linalg::Matrix::Identity(2);
  EXPECT_FALSE(
      linalg::SolveSimplexLsFromNormalEquations(ok_gram, {1.0}, 1.0).ok());
}

TEST(BatchCrosswalk, MatchesIndividualGeoAlign) {
  const synth::Universe& uni = SmallUniverse();
  // References: all datasets except the first two; objectives: those
  // two, crosswalked both individually and as a batch.
  std::vector<core::ReferenceAttribute> refs;
  for (size_t k = 2; k < uni.datasets.size(); ++k) {
    core::ReferenceAttribute ref;
    ref.name = uni.datasets[k].name;
    ref.source_aggregates = uni.datasets[k].source;
    ref.disaggregation = uni.datasets[k].dm;
    refs.push_back(std::move(ref));
  }
  auto batch = std::move(core::BatchCrosswalk::Create(refs)).ValueOrDie();
  EXPECT_EQ(batch.NumSourceUnits(), uni.NumZips());
  EXPECT_EQ(batch.NumTargetUnits(), uni.NumCounties());

  std::vector<core::BatchCrosswalk::Objective> objectives;
  for (size_t t = 0; t < 2; ++t) {
    objectives.push_back({uni.datasets[t].name, uni.datasets[t].source});
  }
  auto results = std::move(batch.Run(objectives)).ValueOrDie();
  ASSERT_EQ(results.size(), 2u);

  core::GeoAlign geoalign;
  for (size_t t = 0; t < 2; ++t) {
    core::CrosswalkInput input;
    input.objective_source = uni.datasets[t].source;
    input.references = refs;
    auto individual = std::move(geoalign.Crosswalk(input)).ValueOrDie();
    EXPECT_EQ(results[t].name, uni.datasets[t].name);
    EXPECT_TRUE(linalg::AllClose(results[t].target_estimates,
                                 individual.target_estimates, 1e-9))
        << uni.datasets[t].name;
    EXPECT_TRUE(
        linalg::AllClose(results[t].weights, individual.weights, 1e-9));
    EXPECT_EQ(results[t].zero_rows, individual.zero_rows);
  }
}

TEST(BatchCrosswalk, ValidatesInput) {
  EXPECT_FALSE(
      core::BatchCrosswalk::Create(std::vector<core::ReferenceAttribute>{})
          .ok());
  const synth::Universe& uni = SmallUniverse();
  std::vector<core::ReferenceAttribute> refs;
  core::ReferenceAttribute ref;
  ref.name = uni.datasets[2].name;
  ref.source_aggregates = uni.datasets[2].source;
  ref.disaggregation = uni.datasets[2].dm;
  refs.push_back(std::move(ref));
  auto batch = std::move(core::BatchCrosswalk::Create(refs)).ValueOrDie();
  // Wrong objective length.
  auto bad = batch.Run({{"x", linalg::Vector{1.0, 2.0}}});
  EXPECT_FALSE(bad.ok());
  // Non-simplex solvers are supported since the compiled-plan rewrite
  // (the plan simply skips the Gram hoist); results must match the
  // individual path.
  core::GeoAlignOptions opts;
  opts.solver = core::WeightSolver::kUniform;
  core::ReferenceAttribute ref2;
  ref2.name = uni.datasets[2].name;
  ref2.source_aggregates = uni.datasets[2].source;
  ref2.disaggregation = uni.datasets[2].dm;
  auto uniform_batch =
      std::move(core::BatchCrosswalk::Create({ref2}, opts)).ValueOrDie();
  auto uniform_results = std::move(
      uniform_batch.Run({{uni.datasets[3].name, uni.datasets[3].source}}))
      .ValueOrDie();
  ASSERT_EQ(uniform_results.size(), 1u);
  core::CrosswalkInput uniform_input;
  uniform_input.objective_source = uni.datasets[3].source;
  uniform_input.references = {ref2};
  auto uniform_individual =
      std::move(core::GeoAlign(opts).Crosswalk(uniform_input)).ValueOrDie();
  EXPECT_EQ(uniform_results[0].target_estimates,
            uniform_individual.target_estimates);
  EXPECT_EQ(uniform_results[0].weights, uniform_individual.weights);
}

const synth::GeometricUniverse& SmallGeometric() {
  static synth::GeometricUniverse* uni = [] {
    synth::GeometricUniverseOptions opts;
    opts.num_zips = 150;
    opts.num_counties = 12;
    opts.population_points = 30000;
    opts.seed = 99;
    return new synth::GeometricUniverse(
        std::move(synth::BuildGeometricUniverse(opts)).ValueOrDie());
  }();
  return *uni;
}

TEST(GeometricUniverse, StructureIsConsistent) {
  const synth::GeometricUniverse& uni = SmallGeometric();
  EXPECT_GT(uni.NumZips(), 100u);
  EXPECT_GE(uni.NumCounties(), 10u);
  // The geometric overlay covers the world.
  EXPECT_NEAR(uni.overlay.TotalMeasure(), 100.0 * 100.0, 1.0);
  // Every dataset's DM marginals are its aggregate vectors.
  for (const synth::Dataset& d : uni.datasets) {
    EXPECT_TRUE(linalg::AllClose(d.dm.RowSums(), d.source, 1e-6)) << d.name;
    EXPECT_TRUE(linalg::AllClose(d.dm.ColSums(), d.target, 1e-6)) << d.name;
  }
  // Leave-one-out inputs validate.
  for (size_t t = 0; t < uni.datasets.size(); ++t) {
    auto input = std::move(uni.MakeLeaveOneOutInput(t)).ValueOrDie();
    EXPECT_TRUE(input.Validate().ok()) << uni.datasets[t].name;
  }
  EXPECT_FALSE(uni.MakeLeaveOneOutInput(999).ok());
}

TEST(GeometricUniverse, GeoAlignBeatsArealWeightingOnPointData) {
  const synth::GeometricUniverse& uni = SmallGeometric();
  core::GeoAlign geoalign;
  core::ArealWeighting areal(uni.measure_dm);
  double ga_total = 0.0;
  double aw_total = 0.0;
  int n = 0;
  for (size_t t = 0; t < uni.datasets.size(); ++t) {
    if (uni.datasets[t].name == "Area (Sq. Miles)") continue;
    auto input = std::move(uni.MakeLeaveOneOutInput(t)).ValueOrDie();
    auto ga = std::move(geoalign.Crosswalk(input)).ValueOrDie();
    auto aw = std::move(areal.Crosswalk(input)).ValueOrDie();
    ga_total += eval::Nrmse(ga.target_estimates, uni.datasets[t].target);
    aw_total += eval::Nrmse(aw.target_estimates, uni.datasets[t].target);
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_LT(ga_total / n, aw_total / n);
}

TEST(GeometricUniverse, ValidatesOptions) {
  synth::GeometricUniverseOptions bad;
  bad.num_counties = 500;
  bad.num_zips = 100;
  EXPECT_FALSE(synth::BuildGeometricUniverse(bad).ok());
}

TEST(GeometricUniverse, DeterministicGivenSeed) {
  synth::GeometricUniverseOptions opts;
  opts.num_zips = 40;
  opts.num_counties = 5;
  opts.population_points = 5000;
  opts.seed = 31;
  auto a = std::move(synth::BuildGeometricUniverse(opts)).ValueOrDie();
  auto b = std::move(synth::BuildGeometricUniverse(opts)).ValueOrDie();
  ASSERT_EQ(a.datasets.size(), b.datasets.size());
  for (size_t d = 0; d < a.datasets.size(); ++d) {
    EXPECT_EQ(a.datasets[d].source, b.datasets[d].source);
  }
}

}  // namespace
}  // namespace geoalign
