// Bit-identity contract of the compile/execute split: for every
// {ScaleMode, WeightSolver, DenominatorMode, ZeroRowFallback} × threads
// combination, `CrosswalkPlan::Compile → Execute` and the thin
// `GeoAlign::Crosswalk` wrapper must produce exactly the bits of the
// preserved legacy oracle `CrosswalkUncompiled` — no tolerances. The
// sweep is a four-way oracle: the fused aggregates-only lane
// (ExecuteOutput::kAggregatesOnly through a reused ExecuteWorkspace)
// and the SIMD column-panel lane (ExecutePanelWith, every lane of a
// replicated panel) must carry the same bits while never materializing
// DM̂_o. Also covers plan reuse/immutability, the PlanCache (including
// forced-ISA independence of cached plans), the pipeline serving path,
// and the batch façade.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/batch.h"
#include "core/geoalign.h"
#include "core/pipeline.h"
#include "core/plan_cache.h"
#include "eval/cross_validation.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "sparse/coo_builder.h"
#include "sparse/simd/panel_kernels.h"
#include "synth/universe.h"

namespace geoalign {
namespace {

synth::Universe MakeWorldUniverse() {
  synth::UniverseOptions opts;
  opts.seed = 555;
  opts.scale = 0.08;
  opts.suite = synth::SuiteKind::kUnitedStates;
  return std::move(synth::BuildUniverse(synth::UniverseId::kNewYork, opts))
      .ValueOrDie();
}

core::CrosswalkInput MakeWorldInput() {
  synth::Universe universe = MakeWorldUniverse();
  return std::move(universe.MakeLeaveOneOutInput(0)).ValueOrDie();
}

// The world input restricted to its dense layers. Poisson layers drop
// zero cells, so their DMs have private structures; the dense layers
// cover every overlay cell and therefore share one CSR structure —
// the aligned regime where the fused execute kernel engages
// (FusedLaneRunsOnAlignedWorld asserts the plan sees it as aligned).
core::CrosswalkInput MakeAlignedDenseInput() {
  core::CrosswalkInput input = MakeWorldInput();
  std::vector<core::ReferenceAttribute> dense;
  for (core::ReferenceAttribute& ref : input.references) {
    if (ref.name == "Area (Sq. Miles)" || ref.name == "Population" ||
        ref.name == "USPS Business Address" ||
        ref.name == "USPS Residential Address") {
      dense.push_back(std::move(ref));
    }
  }
  input.references = std::move(dense);
  return input;
}

// A consistent fallback DM for the world input (uniform support on
// every target, rows summing to the objective so Validate-style
// consistency is irrelevant — only support matters).
sparse::CsrMatrix MakeDenseFallback(size_t rows, size_t cols) {
  sparse::CooBuilder builder(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      builder.Add(r, c, 1.0 + static_cast<double>((r * 7 + c * 3) % 5));
    }
  }
  return builder.Build();
}

void ExpectBitIdentical(const core::CrosswalkResult& got,
                        const core::CrosswalkResult& want) {
  ASSERT_EQ(got.target_estimates, want.target_estimates);
  ASSERT_EQ(got.weights, want.weights);
  ASSERT_EQ(got.zero_rows, want.zero_rows);
  ASSERT_EQ(got.estimated_dm.row_ptr(), want.estimated_dm.row_ptr());
  ASSERT_EQ(got.estimated_dm.col_idx(), want.estimated_dm.col_idx());
  ASSERT_EQ(got.estimated_dm.values(), want.estimated_dm.values());
}

// Aggregates-only executes must carry exactly the oracle's bits for
// everything they produce — and no DM̂_o at all.
void ExpectAggregatesOnly(const core::CrosswalkResult& got,
                          const core::CrosswalkResult& want) {
  ASSERT_EQ(got.target_estimates, want.target_estimates);
  ASSERT_EQ(got.weights, want.weights);
  ASSERT_EQ(got.zero_rows, want.zero_rows);
  ASSERT_EQ(got.estimated_dm.rows(), 0u);
  ASSERT_EQ(got.estimated_dm.values().size(), 0u);
}

// Runs the full option sweep on `input`, comparing the legacy oracle,
// the Crosswalk wrapper, and an explicitly compiled plan bit-for-bit.
void SweepAllOptions(const core::CrosswalkInput& input,
                     const sparse::CsrMatrix& fallback) {
  for (core::ScaleMode scale :
       {core::ScaleMode::kNormalized, core::ScaleMode::kRaw}) {
    for (core::WeightSolver solver :
         {core::WeightSolver::kSimplex, core::WeightSolver::kNnlsNormalized,
          core::WeightSolver::kClampedLs, core::WeightSolver::kUniform}) {
      for (core::DenominatorMode den :
           {core::DenominatorMode::kFromDmRowSums,
            core::DenominatorMode::kFromAggregates}) {
        for (core::ZeroRowFallback fb :
             {core::ZeroRowFallback::kZero,
              core::ZeroRowFallback::kFallbackDm}) {
          for (size_t threads : {size_t{1}, size_t{4}}) {
            SCOPED_TRACE(StrFormat("scale=%d solver=%d den=%d fb=%d thr=%zu",
                                   static_cast<int>(scale),
                                   static_cast<int>(solver),
                                   static_cast<int>(den),
                                   static_cast<int>(fb), threads));
            core::GeoAlignOptions opts;
            opts.scale_mode = scale;
            opts.solver = solver;
            opts.denominator = den;
            opts.zero_row_fallback = fb;
            if (fb == core::ZeroRowFallback::kFallbackDm) {
              opts.fallback_dm = &fallback;
            }
            opts.threads = threads;

            auto legacy =
                std::move(core::CrosswalkUncompiled(input, opts)).ValueOrDie();
            core::GeoAlign geoalign(opts);
            auto wrapped = std::move(geoalign.Crosswalk(input)).ValueOrDie();
            ExpectBitIdentical(wrapped, legacy);

            auto plan = std::move(geoalign.Compile(input)).ValueOrDie();
            auto executed =
                std::move(plan.Execute(input.objective_source)).ValueOrDie();
            ExpectBitIdentical(executed, legacy);

            // Third oracle leg: the fused aggregates-only lane, twice
            // through one reused workspace so the steady-state
            // (zero-growth) path is on the hook too. On non-aligned
            // reference sets this exercises the materializing
            // fallback with the DM dropped — same contract.
            std::unique_ptr<common::ThreadPool> pool =
                common::MakePoolOrNull(common::ResolveThreadCount(threads));
            core::ExecuteWorkspace workspace;
            workspace.Prepare(plan.workspace_spec(),
                              pool != nullptr ? pool->size() + 1 : 1);
            for (int rep = 0; rep < 2; ++rep) {
              auto fused = std::move(plan.ExecuteWith(
                               input.objective_source, pool.get(),
                               core::ExecuteOutput::kAggregatesOnly,
                               &workspace))
                               .ValueOrDie();
              ExpectAggregatesOnly(fused, legacy);
            }

            // Fourth oracle leg: the SIMD column-panel lane. The
            // objective replicated across 3 lanes must hand every lane
            // exactly the single-column bits — panel blocking and lane
            // ganging are throughput choices, never numeric ones. (On
            // non-aligned reference sets ExecutePanelWith degrades to
            // the per-column lane; the contract is the same.)
            {
              const common::ColumnView objs[3] = {input.objective_source,
                                                  input.objective_source,
                                                  input.objective_source};
              std::optional<Result<core::CrosswalkResult>> slots[3];
              std::optional<Result<core::CrosswalkResult>>* slot_ptrs[3] = {
                  &slots[0], &slots[1], &slots[2]};
              plan.ExecutePanelWith(objs, slot_ptrs, 3, &workspace);
              for (auto& slot : slots) {
                ASSERT_TRUE(slot.has_value());
                auto paneled = std::move(*slot).ValueOrDie();
                ExpectAggregatesOnly(paneled, legacy);
              }
            }
          }
        }
      }
    }
  }
}

TEST(PlanEquivalenceTest, AllOptionCombosBitIdentical) {
  core::CrosswalkInput input = MakeWorldInput();
  sparse::CsrMatrix fallback = MakeDenseFallback(
      input.NumSourceUnits(), input.NumTargetUnits());
  SweepAllOptions(input, fallback);
}

TEST(PlanEquivalenceTest, NoisyAggregatesBitIdentical) {
  // Inconsistent inputs (reported aggregates ≠ DM row sums) are the
  // §4.4.1 robustness regime; kFromAggregates vs kFromDmRowSums only
  // diverge here, so the sweep must stay bit-identical on such inputs
  // too.
  core::CrosswalkInput input = MakeWorldInput();
  for (size_t k = 0; k < input.references.size(); ++k) {
    linalg::Vector& agg = input.references[k].source_aggregates;
    for (size_t i = 0; i < agg.size(); ++i) {
      agg[i] *= 1.0 + 0.25 * std::sin(static_cast<double>(i * 13 + k * 7));
    }
  }
  sparse::CsrMatrix fallback = MakeDenseFallback(
      input.NumSourceUnits(), input.NumTargetUnits());
  SweepAllOptions(input, fallback);
}

// Hand-built 3-source × 4-target world where source row 1 has no
// reference support but carries objective mass.
struct ZeroRowWorld {
  core::CrosswalkInput input;
  sparse::CsrMatrix fallback;
};

ZeroRowWorld MakeZeroRowWorld() {
  ZeroRowWorld w;
  w.input.objective_source = {5.0, 7.0, 9.0};

  core::ReferenceAttribute a;
  a.name = "A";
  a.source_aggregates = {2.0, 0.0, 4.0};
  sparse::CooBuilder ba(3, 4);
  ba.Add(0, 0, 1.0);
  ba.Add(0, 1, 1.0);
  ba.Add(2, 0, 2.0);
  ba.Add(2, 2, 2.0);
  a.disaggregation = ba.Build();

  core::ReferenceAttribute b;
  b.name = "B";
  b.source_aggregates = {1.0, 0.0, 3.0};
  sparse::CooBuilder bb(3, 4);
  bb.Add(0, 1, 1.0);
  bb.Add(2, 2, 1.0);
  bb.Add(2, 3, 2.0);
  b.disaggregation = bb.Build();

  w.input.references = {std::move(a), std::move(b)};

  sparse::CooBuilder bf(3, 4);
  bf.Add(0, 0, 5.0);
  bf.Add(1, 1, 3.0);
  bf.Add(1, 3, 4.0);
  bf.Add(2, 2, 9.0);
  w.fallback = bf.Build();
  return w;
}

TEST(PlanEquivalenceTest, ZeroRowWorldBitIdentical) {
  ZeroRowWorld w = MakeZeroRowWorld();
  SweepAllOptions(w.input, w.fallback);

  // Semantics spot-checks on top of bit-identity: kZero loses row 1's
  // mass, kFallbackDm distributes it by the fallback row.
  core::GeoAlignOptions opts;
  auto zero = std::move(core::GeoAlign(opts).Crosswalk(w.input)).ValueOrDie();
  ASSERT_EQ(zero.zero_rows, (std::vector<size_t>{1}));
  EXPECT_DOUBLE_EQ(linalg::Sum(zero.target_estimates), 5.0 + 9.0);

  opts.zero_row_fallback = core::ZeroRowFallback::kFallbackDm;
  opts.fallback_dm = &w.fallback;
  auto fb = std::move(core::GeoAlign(opts).Crosswalk(w.input)).ValueOrDie();
  ASSERT_EQ(fb.zero_rows, (std::vector<size_t>{1}));
  EXPECT_DOUBLE_EQ(linalg::Sum(fb.target_estimates), 5.0 + 7.0 + 9.0);
  EXPECT_DOUBLE_EQ(fb.estimated_dm.At(1, 1), 7.0 * 3.0 / 7.0);
  EXPECT_DOUBLE_EQ(fb.estimated_dm.At(1, 3), 7.0 * 4.0 / 7.0);
}

// Like MakeZeroRowWorld, but both references share one CSR structure
// (identical coordinates, different values) so the compiled plan is
// aligned and kAggregatesOnly goes through the fused kernel — with
// source row 1 empty in both references (a zero-denominator row under
// both DenominatorModes: no DM support and zero aggregates).
ZeroRowWorld MakeAlignedZeroRowWorld() {
  ZeroRowWorld w;
  w.input.objective_source = {5.0, 7.0, 9.0};

  core::ReferenceAttribute a;
  a.name = "A";
  a.source_aggregates = {2.0, 0.0, 4.0};
  sparse::CooBuilder ba(3, 4);
  ba.Add(0, 0, 1.0);
  ba.Add(0, 1, 1.0);
  ba.Add(2, 0, 2.0);
  ba.Add(2, 2, 2.0);
  a.disaggregation = ba.Build();

  core::ReferenceAttribute b;
  b.name = "B";
  b.source_aggregates = {1.0, 0.0, 3.0};
  sparse::CooBuilder bb(3, 4);
  bb.Add(0, 0, 0.25);
  bb.Add(0, 1, 0.75);
  bb.Add(2, 0, 1.0);
  bb.Add(2, 2, 2.0);
  b.disaggregation = bb.Build();

  w.input.references = {std::move(a), std::move(b)};

  sparse::CooBuilder bf(3, 4);
  bf.Add(0, 0, 5.0);
  bf.Add(1, 1, 3.0);
  bf.Add(1, 3, 4.0);
  bf.Add(2, 2, 9.0);
  w.fallback = bf.Build();
  return w;
}

TEST(PlanEquivalenceTest, FusedLaneRunsOnAlignedWorld) {
  // Guards the test premises: the dense world and the hand-built
  // zero-row world must compile as aligned (fused kernel engages), the
  // full world must not (materializing fallback lane).
  core::CrosswalkInput dense = MakeAlignedDenseInput();
  ASSERT_EQ(dense.references.size(), 4u);
  auto dense_plan =
      std::move(core::CrosswalkPlan::Compile(dense, core::GeoAlignOptions{}))
          .ValueOrDie();
  EXPECT_TRUE(dense_plan.references().aligned());

  ZeroRowWorld w = MakeAlignedZeroRowWorld();
  auto zero_plan = std::move(core::CrosswalkPlan::Compile(
                                 w.input, core::GeoAlignOptions{}))
                       .ValueOrDie();
  EXPECT_TRUE(zero_plan.references().aligned());

  core::CrosswalkInput world = MakeWorldInput();
  auto world_plan =
      std::move(core::CrosswalkPlan::Compile(world, core::GeoAlignOptions{}))
          .ValueOrDie();
  EXPECT_FALSE(world_plan.references().aligned())
      << "the Poisson layers should have private DM structures";
}

TEST(PlanEquivalenceTest, AlignedDenseWorldBitIdentical) {
  core::CrosswalkInput input = MakeAlignedDenseInput();
  sparse::CsrMatrix fallback = MakeDenseFallback(
      input.NumSourceUnits(), input.NumTargetUnits());
  SweepAllOptions(input, fallback);
}

TEST(PlanEquivalenceTest, AlignedZeroRowWorldBitIdentical) {
  // The fused kernel's zero-row and fallback-scatter paths, against
  // the same legacy oracle (kFallbackDm iterations of the sweep scatter
  // fallback rows inside the fused pass).
  ZeroRowWorld w = MakeAlignedZeroRowWorld();
  SweepAllOptions(w.input, w.fallback);

  // Semantics spot-check through the fused lane itself.
  core::GeoAlignOptions opts;
  opts.zero_row_fallback = core::ZeroRowFallback::kFallbackDm;
  opts.fallback_dm = &w.fallback;
  auto plan = std::move(core::CrosswalkPlan::Compile(w.input, opts))
                  .ValueOrDie();
  auto fused = std::move(plan.Execute(w.input.objective_source,
                                      core::ExecuteOutput::kAggregatesOnly))
                   .ValueOrDie();
  ASSERT_EQ(fused.zero_rows, (std::vector<size_t>{1}));
  EXPECT_DOUBLE_EQ(linalg::Sum(fused.target_estimates), 5.0 + 7.0 + 9.0);
  EXPECT_EQ(fused.estimated_dm.rows(), 0u);
}

TEST(PlanEquivalenceTest, PreparedWorkspaceServesWithZeroHotPathAllocs) {
  // The steady-state serving promise: once a workspace is Prepared
  // from the plan-compiled spec, repeat executes grow nothing
  // (execute.hot_path_allocs stays flat) and each one counts as a
  // workspace reuse.
  bool saved_enabled = obs::Enabled();
  obs::SetEnabled(true);
  {
    core::CrosswalkInput input = MakeAlignedDenseInput();
    core::GeoAlignOptions opts;
    opts.threads = 1;
    auto plan = std::move(core::CrosswalkPlan::Compile(input, opts))
                    .ValueOrDie();
    ASSERT_TRUE(plan.references().aligned());
    core::ExecuteWorkspace workspace;
    workspace.Prepare(plan.workspace_spec(), /*slots=*/1);

    obs::Counter& allocs = obs::MetricsRegistry::Global().GetCounter(
        "execute.hot_path_allocs");
    obs::Counter& reuse = obs::MetricsRegistry::Global().GetCounter(
        "execute.workspace_reuse");
    uint64_t allocs_before = allocs.Value();
    uint64_t reuse_before = reuse.Value();
    for (int rep = 0; rep < 3; ++rep) {
      auto result = std::move(plan.ExecuteWith(
                        input.objective_source, nullptr,
                        core::ExecuteOutput::kAggregatesOnly, &workspace))
                        .ValueOrDie();
      ASSERT_FALSE(result.target_estimates.empty());
    }
    EXPECT_EQ(allocs.Value(), allocs_before)
        << "a Prepared workspace must serve executes without buffer growth";
    EXPECT_EQ(reuse.Value(), reuse_before + 3);
  }
  obs::SetEnabled(saved_enabled);
}

TEST(PlanEquivalenceTest, FallbackErrorParity) {
  ZeroRowWorld w = MakeZeroRowWorld();
  core::GeoAlignOptions opts;
  opts.zero_row_fallback = core::ZeroRowFallback::kFallbackDm;

  // Missing fallback DM: both paths reject identically (the plan at
  // Compile time, matching the legacy up-front check).
  {
    auto legacy = core::CrosswalkUncompiled(w.input, opts);
    ASSERT_FALSE(legacy.ok());
    auto plan = core::CrosswalkPlan::Compile(w.input, opts);
    ASSERT_FALSE(plan.ok());
    EXPECT_EQ(plan.status().message(), legacy.status().message());
    EXPECT_EQ(plan.status().code(), legacy.status().code());
  }

  // Shape-mismatched fallback DM: the legacy path only errors once a
  // zero row actually needs it, so the plan compiles fine and surfaces
  // the identical error at Execute time.
  sparse::CsrMatrix bad(2, 4);
  opts.fallback_dm = &bad;
  {
    auto legacy = core::CrosswalkUncompiled(w.input, opts);
    ASSERT_FALSE(legacy.ok());
    auto plan = std::move(core::CrosswalkPlan::Compile(w.input, opts))
                    .ValueOrDie();
    auto executed = plan.Execute(w.input.objective_source);
    ASSERT_FALSE(executed.ok());
    EXPECT_EQ(executed.status().message(), legacy.status().message());
    EXPECT_EQ(executed.status().code(), legacy.status().code());
  }

  // The fused aggregates-only lane surfaces the identical error when a
  // zero row actually needs the mismatched fallback (aligned world, so
  // the fused kernel — not the materializing fallback lane — detects
  // it).
  {
    ZeroRowWorld aligned = MakeAlignedZeroRowWorld();
    auto legacy = core::CrosswalkUncompiled(aligned.input, opts);
    ASSERT_FALSE(legacy.ok());
    auto plan = std::move(core::CrosswalkPlan::Compile(aligned.input, opts))
                    .ValueOrDie();
    ASSERT_TRUE(plan.references().aligned());
    auto fused = plan.Execute(aligned.input.objective_source,
                              core::ExecuteOutput::kAggregatesOnly);
    ASSERT_FALSE(fused.ok());
    EXPECT_EQ(fused.status().message(), legacy.status().message());
    EXPECT_EQ(fused.status().code(), legacy.status().code());
  }
}

TEST(PlanEquivalenceTest, PlanIsReusableAndOutlivesInput) {
  core::CrosswalkInput input = MakeWorldInput();
  core::GeoAlignOptions opts;
  opts.threads = 1;
  auto want = std::move(core::CrosswalkUncompiled(input, opts)).ValueOrDie();

  std::optional<core::CrosswalkPlan> plan;
  linalg::Vector objective = input.objective_source;
  {
    // The plan must not alias caller memory: destroy the input (and
    // the interpolator that compiled it) before executing.
    core::CrosswalkInput doomed = input;
    core::GeoAlign geoalign(opts);
    plan.emplace(std::move(geoalign.Compile(doomed)).ValueOrDie());
  }
  for (int rep = 0; rep < 3; ++rep) {
    auto got = std::move(plan->Execute(objective)).ValueOrDie();
    ExpectBitIdentical(got, want);
  }
  // Thread-count overrides are a pure scheduling choice on the shared
  // immutable plan.
  auto threaded = std::move(plan->Execute(objective, 4)).ValueOrDie();
  ExpectBitIdentical(threaded, want);
}

TEST(PlanEquivalenceTest, PlanCacheHitsMissesEviction) {
  core::CrosswalkInput input = MakeWorldInput();
  core::GeoAlignOptions opts;
  opts.threads = 1;

  core::PlanCache cache(2);
  auto p1 = std::move(cache.GetOrCompile(input.references, opts)).ValueOrDie();
  auto p2 = std::move(cache.GetOrCompile(input.references, opts)).ValueOrDie();
  EXPECT_EQ(p1.get(), p2.get()) << "equal inputs must share one plan";
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // threads is excluded from the key: results are bit-identical across
  // thread counts, so the plan is shared.
  core::GeoAlignOptions threaded = opts;
  threaded.threads = 4;
  auto p3 =
      std::move(cache.GetOrCompile(input.references, threaded)).ValueOrDie();
  EXPECT_EQ(p1.get(), p3.get());
  EXPECT_EQ(cache.stats().hits, 2u);

  // A semantic option change is a different key.
  core::GeoAlignOptions uniform = opts;
  uniform.solver = core::WeightSolver::kUniform;
  auto p4 =
      std::move(cache.GetOrCompile(input.references, uniform)).ValueOrDie();
  EXPECT_NE(p1.get(), p4.get());
  EXPECT_EQ(cache.stats().misses, 2u);

  // Third distinct key in a capacity-2 cache evicts the LRU entry; the
  // caller-held shared_ptr stays valid.
  core::GeoAlignOptions raw = opts;
  raw.scale_mode = core::ScaleMode::kRaw;
  auto p5 = std::move(cache.GetOrCompile(input.references, raw)).ValueOrDie();
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  auto via_evicted =
      std::move(p1->Execute(input.objective_source)).ValueOrDie();
  auto want = std::move(core::CrosswalkUncompiled(input, opts)).ValueOrDie();
  ExpectBitIdentical(via_evicted, want);

  // Reference-content changes are part of the key.
  core::CrosswalkInput other = input;
  other.references[0].source_aggregates[0] *= 2.0;
  auto p6 = std::move(cache.GetOrCompile(other.references, opts)).ValueOrDie();
  EXPECT_NE(p5.get(), p6.get());

  // capacity == 0 disables caching entirely.
  core::PlanCache none(0);
  auto n1 = std::move(none.GetOrCompile(input.references, opts)).ValueOrDie();
  auto n2 = std::move(none.GetOrCompile(input.references, opts)).ValueOrDie();
  EXPECT_NE(n1.get(), n2.get());
  EXPECT_EQ(none.stats().hits, 0u);
  EXPECT_EQ(none.stats().misses, 2u);
  EXPECT_EQ(none.size(), 0u);
}

TEST(PlanEquivalenceTest, CrossValidationWithPlanCacheBitIdentical) {
  // The first PlanCache consumer: a cached cross-validation run must
  // reproduce the uncached report bit-for-bit, and a second run over
  // the same universe must hit every fold's plan.
  synth::Universe universe = MakeWorldUniverse();
  eval::CvOptions options;
  options.dasymetric_references.clear();
  options.run_areal_weighting = false;
  options.geoalign_options.threads = 1;
  auto base = std::move(eval::RunCrossValidation(universe, options))
                  .ValueOrDie();

  core::PlanCache cache(32);
  options.plan_cache = &cache;
  auto cached = std::move(eval::RunCrossValidation(universe, options))
                    .ValueOrDie();
  size_t first_run_misses = cache.stats().misses;
  EXPECT_EQ(first_run_misses, universe.datasets.size())
      << "each leave-one-out fold is a distinct reference subset";
  auto rerun = std::move(eval::RunCrossValidation(universe, options))
                   .ValueOrDie();
  EXPECT_EQ(cache.stats().misses, first_run_misses)
      << "the second run must be served entirely from the cache";
  EXPECT_EQ(cache.stats().hits, universe.datasets.size());

  for (const auto* report : {&cached, &rerun}) {
    ASSERT_EQ(report->cells.size(), base.cells.size());
    for (size_t i = 0; i < base.cells.size(); ++i) {
      EXPECT_EQ(report->cells[i].dataset, base.cells[i].dataset);
      EXPECT_EQ(report->cells[i].method, base.cells[i].method);
      EXPECT_EQ(report->cells[i].nrmse, base.cells[i].nrmse);
      EXPECT_EQ(report->cells[i].rmse, base.cells[i].rmse);
    }
  }
}

std::vector<std::string> MakeUnitNames(const char* prefix, size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back(StrFormat("%s%06zu", prefix, i));
  }
  return names;
}

TEST(PlanEquivalenceTest, PipelineRejectsDuplicateUnitNames) {
  ZeroRowWorld w = MakeZeroRowWorld();
  std::vector<std::string> sources = {"s0", "s1", "s0"};
  std::vector<std::string> targets = MakeUnitNames("t", 4);
  auto dup_source = core::CrosswalkPipeline::Create(
      sources, targets, w.input.references);
  ASSERT_FALSE(dup_source.ok());
  EXPECT_EQ(dup_source.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup_source.status().message().find(
                "duplicate source unit name 's0'"),
            std::string::npos)
      << dup_source.status().message();

  auto dup_target = core::CrosswalkPipeline::Create(
      MakeUnitNames("s", 3), {"t0", "t1", "t2", "t1"}, w.input.references);
  ASSERT_FALSE(dup_target.ok());
  EXPECT_EQ(dup_target.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup_target.status().message().find(
                "duplicate target unit name 't1'"),
            std::string::npos)
      << dup_target.status().message();
}

TEST(PlanEquivalenceTest, PipelineServesSharedPlanBitIdentically) {
  core::CrosswalkInput input = MakeWorldInput();
  std::vector<std::string> sources =
      MakeUnitNames("s", input.NumSourceUnits());
  std::vector<std::string> targets =
      MakeUnitNames("t", input.NumTargetUnits());
  auto pipeline = std::move(core::CrosswalkPipeline::Create(
                                sources, targets, input.references))
                      .ValueOrDie();
  ASSERT_NE(pipeline.plan(), nullptr)
      << "a GeoAlign pipeline must compile its plan in Create";

  // A few named columns: full, sparse (missing units read as 0), and
  // one with a repeated unit (values add).
  std::vector<core::CrosswalkPipeline::Column> columns;
  core::CrosswalkPipeline::Column full;
  for (size_t i = 0; i < sources.size(); ++i) {
    full.emplace_back(sources[i], input.objective_source[i]);
  }
  columns.push_back(full);
  core::CrosswalkPipeline::Column sparse_col;
  for (size_t i = 0; i < sources.size(); i += 3) {
    sparse_col.emplace_back(sources[i], 1.0 + static_cast<double>(i));
  }
  columns.push_back(sparse_col);
  core::CrosswalkPipeline::Column repeated = sparse_col;
  repeated.emplace_back(sources[0], 2.5);
  columns.push_back(repeated);

  // RealignMany over the shared plan ≡ looping Realign, for any thread
  // count — and Realign itself ≡ the legacy oracle.
  auto many1 = std::move(pipeline.RealignMany(columns, 1)).ValueOrDie();
  auto many4 = std::move(pipeline.RealignMany(columns, 4)).ValueOrDie();
  ASSERT_EQ(many1.size(), columns.size());
  ASSERT_EQ(many4.size(), columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    SCOPED_TRACE(StrFormat("column %zu", i));
    auto single = std::move(pipeline.Realign(columns[i])).ValueOrDie();
    ExpectBitIdentical(many1[i], single);
    ExpectBitIdentical(many4[i], single);

    core::CrosswalkInput per_call = input;
    per_call.objective_source.assign(sources.size(), 0.0);
    for (const auto& [unit, value] : columns[i]) {
      size_t idx = static_cast<size_t>(
          std::stoul(unit.substr(1)));  // "s%06zu" → index
      per_call.objective_source[idx] += value;
    }
    auto legacy = std::move(core::CrosswalkUncompiled(
                                per_call, core::GeoAlignOptions{}))
                      .ValueOrDie();
    ExpectBitIdentical(single, legacy);
  }

  // Unknown unit names still error through the hoisted index.
  auto unknown = pipeline.Realign({{"nope", 1.0}});
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("unknown unit 'nope'"),
            std::string::npos);
}

TEST(PlanEquivalenceTest, PanelLaneServesWithZeroHotPathAllocs) {
  // The panel-lane steady-state promise: a workspace taken through
  // Prepare + PreparePanel serves whole panels without a single buffer
  // growth (execute.hot_path_allocs stays flat from panel 0).
  bool saved_enabled = obs::Enabled();
  obs::SetEnabled(true);
  {
    core::CrosswalkInput input = MakeAlignedDenseInput();
    core::GeoAlignOptions opts;
    opts.threads = 1;
    auto plan = std::move(core::CrosswalkPlan::Compile(input, opts))
                    .ValueOrDie();
    ASSERT_TRUE(plan.references().aligned());
    constexpr size_t kWidth = 8;
    core::ExecuteWorkspace workspace;
    workspace.Prepare(plan.workspace_spec(), /*slots=*/1);
    workspace.PreparePanel(plan.workspace_spec(), kWidth);

    obs::Counter& allocs = obs::MetricsRegistry::Global().GetCounter(
        "execute.hot_path_allocs");
    uint64_t allocs_before = allocs.Value();
    common::ColumnView objs[kWidth];
    std::optional<Result<core::CrosswalkResult>> slots[kWidth];
    std::optional<Result<core::CrosswalkResult>>* slot_ptrs[kWidth];
    for (int rep = 0; rep < 3; ++rep) {
      for (size_t p = 0; p < kWidth; ++p) {
        objs[p] = input.objective_source;
        slots[p].reset();
        slot_ptrs[p] = &slots[p];
      }
      plan.ExecutePanelWith(objs, slot_ptrs, kWidth, &workspace);
      for (auto& slot : slots) {
        ASSERT_TRUE(slot.has_value());
        ASSERT_TRUE(slot->ok());
      }
    }
    EXPECT_EQ(allocs.Value(), allocs_before)
        << "a PreparePanel'd workspace must serve panels without growth";
  }
  obs::SetEnabled(saved_enabled);
}

TEST(PlanEquivalenceTest, CachedPlanExecutesIdenticallyAcrossForcedIsas) {
  // Satellite of the SIMD dispatch: the panel width is an execute-time
  // property derived from the active ISA, NEVER part of the plan or
  // its fingerprint — so one PlanCache entry must serve every ISA with
  // identical bits. ScopedForceIsa is the in-process form of
  // GEOALIGN_FORCE_ISA (tools/ci.sh runs the whole suite under the env
  // form too).
  core::CrosswalkInput input = MakeAlignedDenseInput();
  core::GeoAlignOptions opts;
  opts.threads = 1;
  core::PlanCache cache(4);
  auto plan = std::move(cache.GetOrCompile(input.references, opts))
                  .ValueOrDie();
  ASSERT_TRUE(plan->references().aligned());
  const uint64_t fingerprint = plan->fingerprint();

  // Three distinct objectives so the panel has real lane diversity.
  std::vector<linalg::Vector> objectives;
  objectives.push_back(input.objective_source);
  linalg::Vector scaled = input.objective_source;
  linalg::Scale(scaled, 2.5);
  objectives.push_back(std::move(scaled));
  linalg::Vector shifted = input.objective_source;
  for (size_t i = 0; i < shifted.size(); ++i) {
    shifted[i] += static_cast<double>(i % 7);
  }
  objectives.push_back(std::move(shifted));

  auto run_panel = [&](sparse::simd::Isa isa) {
    sparse::simd::ScopedForceIsa force(isa);
    // The cache key must not see the ISA: a lookup under any forced
    // ISA hits the same entry.
    auto again = std::move(cache.GetOrCompile(input.references, opts))
                     .ValueOrDie();
    EXPECT_EQ(again.get(), plan.get())
        << "forcing an ISA must not change the PlanCache key";
    EXPECT_EQ(plan->fingerprint(), fingerprint);
    EXPECT_GE(plan->panel_width(), 1u);
    EXPECT_LE(plan->panel_width(), sparse::simd::kMaxPanelWidth);

    common::ColumnView objs[3];
    std::optional<Result<core::CrosswalkResult>> slots[3];
    std::optional<Result<core::CrosswalkResult>>* slot_ptrs[3];
    for (size_t p = 0; p < 3; ++p) {
      objs[p] = objectives[p];
      slot_ptrs[p] = &slots[p];
    }
    plan->ExecutePanelWith(objs, slot_ptrs, 3, nullptr);
    std::vector<core::CrosswalkResult> out;
    for (auto& slot : slots) {
      out.push_back(std::move(*slot).ValueOrDie());
    }
    return out;
  };

  auto scalar_results = run_panel(sparse::simd::Isa::kScalar);
  auto native_results = run_panel(sparse::simd::BestSupportedIsa());
  ASSERT_EQ(scalar_results.size(), native_results.size());
  for (size_t p = 0; p < scalar_results.size(); ++p) {
    SCOPED_TRACE(StrFormat("objective %zu", p));
    ExpectAggregatesOnly(native_results[p], scalar_results[p]);
    // And both match the legacy oracle for that objective.
    core::CrosswalkInput per_call = input;
    per_call.objective_source = objectives[p];
    auto legacy = std::move(core::CrosswalkUncompiled(per_call, opts))
                      .ValueOrDie();
    ExpectAggregatesOnly(scalar_results[p], legacy);
  }
}

TEST(PlanEquivalenceTest, AlignedBatchRunServesPanelsBitIdentically) {
  // BatchCrosswalk::Run on an aligned plan takes the panel serving
  // path (RunPanels); every result must still carry exactly the
  // per-call Crosswalk bits, for serial and pooled runs alike — and a
  // wrong-length objective must keep its Batch-specific error.
  core::CrosswalkInput input = MakeAlignedDenseInput();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(StrFormat("threads=%zu", threads));
    core::GeoAlignOptions opts;
    opts.threads = threads;
    auto batch =
        std::move(core::BatchCrosswalk::Create(input.references, opts))
            .ValueOrDie();

    // More objectives than one panel width so the panel loop runs
    // several panels (including a ragged final one).
    std::vector<core::BatchCrosswalk::Objective> objectives;
    for (size_t i = 0; i < 19; ++i) {
      linalg::Vector col = input.objective_source;
      linalg::Scale(col, 1.0 + 0.25 * static_cast<double>(i));
      objectives.push_back({StrFormat("col%zu", i), std::move(col)});
    }
    auto results = std::move(batch.Run(objectives)).ValueOrDie();
    ASSERT_EQ(results.size(), objectives.size());
    core::GeoAlign geoalign(opts);
    for (size_t i = 0; i < objectives.size(); ++i) {
      SCOPED_TRACE(objectives[i].name);
      core::CrosswalkInput per_call = input;
      per_call.objective_source = objectives[i].source;
      auto want = std::move(geoalign.Crosswalk(per_call)).ValueOrDie();
      EXPECT_EQ(results[i].name, objectives[i].name);
      ASSERT_EQ(results[i].target_estimates, want.target_estimates);
      ASSERT_EQ(results[i].weights, want.weights);
      ASSERT_EQ(results[i].zero_rows, want.zero_rows);
    }

    // Error parity through the panel path: the lowest-index failing
    // objective's Batch-specific message is returned.
    std::vector<core::BatchCrosswalk::Objective> bad = objectives;
    bad[3].source = linalg::Vector{1.0, 2.0};
    auto failed = batch.Run(bad);
    ASSERT_FALSE(failed.ok());
    EXPECT_NE(failed.status().message().find("objective 'col3' wrong length"),
              std::string::npos)
        << failed.status().message();
  }
}

TEST(PlanEquivalenceTest, AlignedPipelineRealignManyServesPanelsBitIdentically) {
  // CrosswalkPipeline::RealignMany(kAggregatesOnly) on an aligned plan
  // takes the panel serving path; results must match the per-column
  // Realign bits at every thread count, with unknown-unit errors still
  // reported per failing column.
  core::CrosswalkInput input = MakeAlignedDenseInput();
  std::vector<std::string> sources =
      MakeUnitNames("s", input.NumSourceUnits());
  std::vector<std::string> targets =
      MakeUnitNames("t", input.NumTargetUnits());
  auto pipeline = std::move(core::CrosswalkPipeline::Create(
                                sources, targets, input.references))
                      .ValueOrDie();
  ASSERT_NE(pipeline.plan(), nullptr);
  ASSERT_TRUE(pipeline.plan()->references().aligned());

  std::vector<core::CrosswalkPipeline::Column> columns;
  for (size_t i = 0; i < 21; ++i) {
    core::CrosswalkPipeline::Column col;
    for (size_t s = 0; s < sources.size(); ++s) {
      col.emplace_back(sources[s], input.objective_source[s] *
                                       (1.0 + 0.125 * static_cast<double>(i)));
    }
    columns.push_back(std::move(col));
  }
  auto many1 =
      std::move(pipeline.RealignMany(columns, 1,
                                     core::ExecuteOutput::kAggregatesOnly))
          .ValueOrDie();
  auto many4 =
      std::move(pipeline.RealignMany(columns, 4,
                                     core::ExecuteOutput::kAggregatesOnly))
          .ValueOrDie();
  ASSERT_EQ(many1.size(), columns.size());
  ASSERT_EQ(many4.size(), columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    SCOPED_TRACE(StrFormat("column %zu", i));
    auto single = std::move(pipeline.Realign(columns[i])).ValueOrDie();
    ExpectAggregatesOnly(many1[i], single);
    ExpectAggregatesOnly(many4[i], single);
  }

  // A column naming an unknown unit fails with its own status while
  // the panel still serves the valid columns around it.
  std::vector<core::CrosswalkPipeline::Column> with_bad = columns;
  with_bad[2] = {{"nope", 1.0}};
  auto failed = pipeline.RealignMany(with_bad, 1,
                                     core::ExecuteOutput::kAggregatesOnly);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("unknown unit 'nope'"),
            std::string::npos)
      << failed.status().message();
}

TEST(PlanEquivalenceTest, BatchMatchesCrosswalkBitIdentically) {
  core::CrosswalkInput input = MakeWorldInput();
  for (core::WeightSolver solver :
       {core::WeightSolver::kSimplex, core::WeightSolver::kNnlsNormalized,
        core::WeightSolver::kClampedLs, core::WeightSolver::kUniform}) {
    SCOPED_TRACE(StrFormat("solver=%d", static_cast<int>(solver)));
    core::GeoAlignOptions opts;
    opts.solver = solver;
    opts.threads = 1;
    auto batch =
        std::move(core::BatchCrosswalk::Create(input.references, opts))
            .ValueOrDie();

    std::vector<core::BatchCrosswalk::Objective> objectives;
    objectives.push_back({"base", input.objective_source});
    linalg::Vector scaled = input.objective_source;
    linalg::Scale(scaled, 3.25);
    objectives.push_back({"scaled", std::move(scaled)});

    auto results = std::move(batch.Run(objectives)).ValueOrDie();
    ASSERT_EQ(results.size(), objectives.size());
    core::GeoAlign geoalign(opts);
    for (size_t i = 0; i < objectives.size(); ++i) {
      SCOPED_TRACE(objectives[i].name);
      core::CrosswalkInput per_call = input;
      per_call.objective_source = objectives[i].source;
      auto want = std::move(geoalign.Crosswalk(per_call)).ValueOrDie();
      EXPECT_EQ(results[i].name, objectives[i].name);
      ASSERT_EQ(results[i].target_estimates, want.target_estimates);
      ASSERT_EQ(results[i].weights, want.weights);
      ASSERT_EQ(results[i].zero_rows, want.zero_rows);
    }
  }
}

}  // namespace
}  // namespace geoalign
