// Unit tests for JSON / GeoJSON / crosswalk-file I/O and the
// regression baseline.

#include <gtest/gtest.h>

#include <cmath>

#include "core/regression.h"
#include "io/crosswalk_io.h"
#include "io/csv.h"
#include "io/geojson.h"
#include "io/json.h"

namespace geoalign {
namespace {

using io::JsonValue;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(std::move(io::ParseJson("null")).ValueOrDie().is_null());
  EXPECT_EQ(std::move(std::move(io::ParseJson("true")).ValueOrDie().AsBool()).ValueOrDie(), true);
  EXPECT_DOUBLE_EQ(std::move(std::move(io::ParseJson("-3.5e2")).ValueOrDie().AsNumber()).ValueOrDie(),
                   -350.0);
  EXPECT_EQ(std::move(std::move(io::ParseJson("\"a\\nb\"")).ValueOrDie().AsString()).ValueOrDie(),
            "a\nb");
}

TEST(Json, ParsesNested) {
  auto v = std::move(io::ParseJson(
      R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}})")).ValueOrDie();
  auto a = std::move(v.Get("a")).ValueOrDie();
  EXPECT_EQ(a->size(), 3u);
  EXPECT_DOUBLE_EQ(std::move((*a)[1].AsNumber()).ValueOrDie(), 2.0);
  auto b = std::move((*a)[2].Get("b")).ValueOrDie();
  EXPECT_EQ(std::move(b->AsString()).ValueOrDie(), "x");
  EXPECT_TRUE(v.Has("c"));
  EXPECT_FALSE(v.Has("z"));
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(std::move(std::move(io::ParseJson("\"\\u0041\"")).ValueOrDie().AsString()).ValueOrDie(),
            "A");
  EXPECT_FALSE(io::ParseJson("\"\\u20AC\"").ok());  // non-ASCII rejected
}

TEST(Json, RejectsMalformed) {
  EXPECT_FALSE(io::ParseJson("").ok());
  EXPECT_FALSE(io::ParseJson("{").ok());
  EXPECT_FALSE(io::ParseJson("[1,]").ok());
  EXPECT_FALSE(io::ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(io::ParseJson("12 34").ok());
  EXPECT_FALSE(io::ParseJson("\"unterminated").ok());
}

TEST(Json, DeepNestingRejectedNotCrashed) {
  std::string deep(100000, '[');
  EXPECT_FALSE(io::ParseJson(deep).ok());
  // Moderate nesting within the limit still parses.
  std::string ok_doc = std::string(200, '[') + "1" + std::string(200, ']');
  EXPECT_TRUE(io::ParseJson(ok_doc).ok());
}

TEST(Json, DumpRoundTrip) {
  const char* text =
      R"({"arr":[1,2.5,"s"],"flag":true,"name":"x","none":null})";
  auto v = std::move(io::ParseJson(text)).ValueOrDie();
  auto back = std::move(io::ParseJson(v.Dump())).ValueOrDie();
  EXPECT_EQ(v.Dump(), back.Dump());
}

constexpr const char* kFeatureCollection = R"({
  "type": "FeatureCollection",
  "features": [
    {"type": "Feature",
     "geometry": {"type": "Polygon",
                  "coordinates": [[[0,0],[4,0],[4,4],[0,4],[0,0]],
                                  [[1,1],[2,1],[2,2],[1,2],[1,1]]]},
     "properties": {"name": "alpha", "pop": 1234}},
    {"type": "Feature",
     "geometry": {"type": "MultiPolygon",
                  "coordinates": [[[[10,10],[11,10],[11,11],[10,11]]],
                                  [[[20,20],[21,20],[21,21],[20,21]]]]},
     "properties": {"name": "beta", "pop": 7}}
  ]
})";

TEST(GeoJson, ParsesFeatureCollection) {
  auto fc = std::move(io::ParseGeoJson(kFeatureCollection)).ValueOrDie();
  ASSERT_EQ(fc.features.size(), 2u);
  // Polygon with a hole: area 16 - 1.
  ASSERT_EQ(fc.features[0].geometry.size(), 1u);
  EXPECT_DOUBLE_EQ(fc.features[0].geometry[0].Area(), 15.0);
  EXPECT_EQ(fc.features[0].properties.at("name"), "alpha");
  EXPECT_EQ(fc.features[0].properties.at("pop"), "1234");
  // MultiPolygon with 2 parts.
  EXPECT_EQ(fc.features[1].geometry.size(), 2u);
  auto names = std::move(fc.PropertyColumn("name")).ValueOrDie();
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_FALSE(fc.PropertyColumn("missing").ok());
}

TEST(GeoJson, ParsesBareGeometry) {
  auto fc = std::move(io::ParseGeoJson(
      R"({"type":"Polygon","coordinates":[[[0,0],[1,0],[0,1]]]})")).ValueOrDie();
  ASSERT_EQ(fc.features.size(), 1u);
  EXPECT_DOUBLE_EQ(fc.features[0].geometry[0].Area(), 0.5);
}

TEST(GeoJson, RejectsUnsupported) {
  EXPECT_FALSE(io::ParseGeoJson(
                   R"({"type":"Point","coordinates":[1,2]})")
                   .ok());
  EXPECT_FALSE(io::ParseGeoJson(R"({"type":"Feature"})").ok());
  EXPECT_FALSE(io::ParseGeoJson("not json").ok());
}

TEST(GeoJson, RoundTrip) {
  auto fc = std::move(io::ParseGeoJson(kFeatureCollection)).ValueOrDie();
  std::string text = io::ToGeoJson(fc);
  auto back = std::move(io::ParseGeoJson(text)).ValueOrDie();
  ASSERT_EQ(back.features.size(), 2u);
  EXPECT_DOUBLE_EQ(back.features[0].geometry[0].Area(), 15.0);
  EXPECT_EQ(back.features[1].properties.at("name"), "beta");
}

TEST(GeoJson, FileRoundTrip) {
  auto fc = std::move(io::ParseGeoJson(kFeatureCollection)).ValueOrDie();
  std::string path = ::testing::TempDir() + "/geoalign_test.geojson";
  ASSERT_TRUE(io::WriteGeoJsonFile(fc, path).ok());
  auto back = std::move(io::ReadGeoJsonFile(path)).ValueOrDie();
  EXPECT_EQ(back.features.size(), 2u);
  std::remove(path.c_str());
  EXPECT_FALSE(io::ReadGeoJsonFile("/no/such.geojson").ok());
}

constexpr const char* kCrosswalkCsv =
    "source,target,value\n"
    "10001,New York,21102\n"
    "10002,New York,70000\n"
    "10002,Bronx,11410\n"
    "10003,Bronx,56024\n";

TEST(CrosswalkIo, LoadsLongForm) {
  auto table = std::move(io::ParseCsv(kCrosswalkCsv)).ValueOrDie();
  auto cw = std::move(io::CrosswalkFromTable(table, "source", "target",
                                             "value")).ValueOrDie();
  EXPECT_EQ(cw.source_units,
            (std::vector<std::string>{"10001", "10002", "10003"}));
  EXPECT_EQ(cw.target_units, (std::vector<std::string>{"Bronx", "New York"}));
  EXPECT_DOUBLE_EQ(cw.dm.At(1, 0), 11410.0);  // 10002 x Bronx
  EXPECT_DOUBLE_EQ(cw.dm.At(1, 1), 70000.0);
  auto ref = io::ReferenceFromCrosswalk("population", cw);
  EXPECT_EQ(ref.source_aggregates,
            (linalg::Vector{21102.0, 81410.0, 56024.0}));
}

TEST(CrosswalkIo, ExplicitUnitOrderingRespected) {
  auto table = std::move(io::ParseCsv(kCrosswalkCsv)).ValueOrDie();
  auto cw = std::move(io::CrosswalkFromTable(
      table, "source", "target", "value",
      {"10003", "10002", "10001"}, {"New York", "Bronx"})).ValueOrDie();
  EXPECT_DOUBLE_EQ(cw.dm.At(0, 1), 56024.0);  // 10003 x Bronx
  // Unknown unit -> error.
  EXPECT_FALSE(io::CrosswalkFromTable(table, "source", "target", "value",
                                      {"10001"}, {})
                   .ok());
}

TEST(CrosswalkIo, RejectsNegativeAndBadColumns) {
  auto bad = std::move(io::ParseCsv("source,target,value\na,b,-1\n")).ValueOrDie();
  EXPECT_FALSE(
      io::CrosswalkFromTable(bad, "source", "target", "value").ok());
  auto table = std::move(io::ParseCsv(kCrosswalkCsv)).ValueOrDie();
  EXPECT_FALSE(io::CrosswalkFromTable(table, "nope", "target", "value").ok());
}

TEST(CrosswalkIo, TableRoundTrip) {
  auto table = std::move(io::ParseCsv(kCrosswalkCsv)).ValueOrDie();
  auto cw = std::move(io::CrosswalkFromTable(table, "source", "target",
                                             "value")).ValueOrDie();
  io::Table out = io::CrosswalkToTable(cw, "s", "t", "v");
  auto back = std::move(io::CrosswalkFromTable(out, "s", "t", "v",
                                               cw.source_units,
                                               cw.target_units)).ValueOrDie();
  EXPECT_TRUE(back.dm.AllClose(cw.dm, 1e-9));
}

TEST(CrosswalkIo, AggregatesFromTable) {
  auto table = std::move(io::ParseCsv("unit,value\nb,2\na,1\nb,3\n")).ValueOrDie();
  auto vec = std::move(io::AggregatesFromTable(table, "unit", "value",
                                               {"a", "b", "c"})).ValueOrDie();
  EXPECT_EQ(vec, (linalg::Vector{1.0, 5.0, 0.0}));
  EXPECT_FALSE(
      io::AggregatesFromTable(table, "unit", "value", {"a"}).ok());
}

core::ReferenceAttribute DenseRef(const char* name,
                                  std::vector<std::vector<double>> rows) {
  core::ReferenceAttribute ref;
  ref.name = name;
  ref.disaggregation =
      sparse::CsrMatrix::FromDense(linalg::Matrix::FromRows(rows));
  ref.source_aggregates = ref.disaggregation.RowSums();
  return ref;
}

TEST(RegressionBaseline, ExactWhenObjectiveIsLinearInReferences) {
  core::CrosswalkInput input;
  input.references.push_back(
      DenseRef("a", {{2.0, 0.0}, {1.0, 3.0}, {0.0, 4.0}}));
  input.references.push_back(
      DenseRef("b", {{0.0, 1.0}, {2.0, 0.0}, {3.0, 1.0}}));
  // objective source = 2*a_source + 0.5*b_source (references are not
  // collinear at source level, so the OLS fit is unique).
  input.objective_source = {2.0 * 2.0 + 0.5 * 1.0, 2.0 * 4.0 + 0.5 * 2.0,
                            2.0 * 4.0 + 0.5 * 4.0};
  core::RegressionBaseline reg;
  auto res = std::move(reg.Crosswalk(input)).ValueOrDie();
  // Prediction = 2 * a_target + 0.5 * b_target.
  linalg::Vector a_t = input.references[0].TargetAggregates();
  linalg::Vector b_t = input.references[1].TargetAggregates();
  for (size_t j = 0; j < a_t.size(); ++j) {
    EXPECT_NEAR(res.target_estimates[j], 2.0 * a_t[j] + 0.5 * b_t[j], 1e-9);
  }
}

TEST(RegressionBaseline, ClampsNegativePredictions) {
  core::CrosswalkInput input;
  input.references.push_back(DenseRef("a", {{1.0, 0.0}, {0.0, 5.0}}));
  // Negative coefficient fit: objective anti-follows the reference.
  input.objective_source = {10.0, 0.0};
  core::RegressionBaseline reg;
  auto res = std::move(reg.Crosswalk(input)).ValueOrDie();
  for (double v : res.target_estimates) EXPECT_GE(v, 0.0);
}

TEST(RegressionBaseline, DuplicateReferencesFallBack) {
  core::CrosswalkInput input;
  input.references.push_back(DenseRef("a", {{1.0, 0.0}, {0.0, 2.0}}));
  input.references.push_back(DenseRef("a2", {{1.0, 0.0}, {0.0, 2.0}}));
  input.objective_source = {3.0, 6.0};
  core::RegressionBaseline reg;
  auto res = reg.Crosswalk(input);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(linalg::Sum(res->target_estimates), 0.0);
}

TEST(RegressionBaseline, NotVolumePreserving) {
  // Document the contrast with GeoAlign: regression predictions need
  // not conserve total mass.
  core::CrosswalkInput input;
  input.references.push_back(
      DenseRef("a", {{2.0, 1.0}, {1.0, 3.0}, {5.0, 0.0}}));
  input.objective_source = {1.0, 10.0, 2.0};  // poorly explained
  core::RegressionBaseline reg;
  auto res = std::move(reg.Crosswalk(input)).ValueOrDie();
  EXPECT_EQ(res.estimated_dm.nnz(), 0u);  // no DM interpretation
}

}  // namespace
}  // namespace geoalign
