// Unit tests for the partition/overlay substrate, covering all four
// unit-system representations and the overlay invariants GeoAlign's
// correctness depends on (measure conservation, DM consistency).

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geom/voronoi.h"
#include "partition/box_partition.h"
#include "partition/cell_partition.h"
#include "partition/disaggregation.h"
#include "partition/interval_partition.h"
#include "partition/overlay.h"
#include "partition/polygon_partition.h"
#include "sparse/coo_builder.h"

namespace geoalign::partition {
namespace {

using geom::BBox;
using geom::Point;
using geom::Polygon;

TEST(IntervalPartition, CreateValidates) {
  EXPECT_FALSE(IntervalPartition::Create({1.0}).ok());
  EXPECT_FALSE(IntervalPartition::Create({1.0, 1.0}).ok());
  EXPECT_FALSE(IntervalPartition::Create({2.0, 1.0}).ok());
  EXPECT_TRUE(IntervalPartition::Create({0.0, 1.0, 3.0}).ok());
}

TEST(IntervalPartition, UniformAndMeasure) {
  auto p = std::move(IntervalPartition::Uniform(0.0, 10.0, 5)).ValueOrDie();
  EXPECT_EQ(p.NumUnits(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(p.Measure(i), 2.0);
  EXPECT_DOUBLE_EQ(p.lower(2), 4.0);
  EXPECT_DOUBLE_EQ(p.upper(2), 6.0);
}

TEST(IntervalPartition, LocateHalfOpenSemantics) {
  auto p = std::move(IntervalPartition::Create({0.0, 1.0, 2.0})).ValueOrDie();
  EXPECT_EQ(std::move(p.Locate(0.0)).ValueOrDie(), 0u);
  EXPECT_EQ(std::move(p.Locate(0.99)).ValueOrDie(), 0u);
  EXPECT_EQ(std::move(p.Locate(1.0)).ValueOrDie(), 1u);
  EXPECT_EQ(std::move(p.Locate(2.0)).ValueOrDie(), 1u);  // top endpoint
  EXPECT_FALSE(p.Locate(-0.1).ok());
  EXPECT_FALSE(p.Locate(2.1).ok());
}

TEST(OverlayIntervals, KnownExample) {
  // The paper's Fig. 3 setting: narrow vs wide age bins.
  auto narrow =
      std::move(IntervalPartition::Create({0, 10, 20, 30, 40, 60})).ValueOrDie();
  auto wide = std::move(IntervalPartition::Create({0, 25, 60})).ValueOrDie();
  auto ov = std::move(OverlayIntervals(narrow, wide)).ValueOrDie();
  // Intersections: [0,10),[10,20),[20,25) in wide0; [25,30),[30,40),[40,60).
  EXPECT_EQ(ov.cells.size(), 6u);
  EXPECT_NEAR(ov.TotalMeasure(), 60.0, 1e-12);
  sparse::CsrMatrix dm = ov.MeasureDm();
  EXPECT_DOUBLE_EQ(dm.At(2, 0), 5.0);  // [20,30) splits 5/5
  EXPECT_DOUBLE_EQ(dm.At(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(dm.At(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(dm.At(4, 1), 20.0);
}

TEST(OverlayIntervals, RejectsMismatchedUniverse) {
  auto a = std::move(IntervalPartition::Uniform(0, 10, 2)).ValueOrDie();
  auto b = std::move(IntervalPartition::Uniform(0, 12, 3)).ValueOrDie();
  EXPECT_FALSE(OverlayIntervals(a, b).ok());
}

TEST(OverlayIntervals, RandomizedMeasureConservation) {
  Rng rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    auto make = [&rng]() {
      std::vector<double> breaks = {0.0};
      size_t n = 2 + rng.UniformInt(uint64_t{30});
      for (size_t i = 0; i < n; ++i) {
        breaks.push_back(breaks.back() + rng.Uniform(0.1, 3.0));
      }
      // Rescale to span [0, 100] exactly.
      double scale = 100.0 / breaks.back();
      for (double& v : breaks) v *= scale;
      return std::move(IntervalPartition::Create(breaks)).ValueOrDie();
    };
    IntervalPartition s = make();
    IntervalPartition t = make();
    auto ov = std::move(OverlayIntervals(s, t)).ValueOrDie();
    EXPECT_NEAR(ov.TotalMeasure(), 100.0, 1e-9);
    // Row sums of the measure DM reproduce source unit widths.
    linalg::Vector rows = ov.MeasureDm().RowSums();
    for (size_t i = 0; i < s.NumUnits(); ++i) {
      EXPECT_NEAR(rows[i], s.Measure(i), 1e-9);
    }
  }
}

TEST(BoxPartition, IndexingRoundTrip) {
  auto x = std::move(IntervalPartition::Uniform(0, 4, 4)).ValueOrDie();
  auto y = std::move(IntervalPartition::Uniform(0, 3, 3)).ValueOrDie();
  auto z = std::move(IntervalPartition::Uniform(0, 2, 2)).ValueOrDie();
  auto box = std::move(BoxPartition::Create({x, y, z})).ValueOrDie();
  EXPECT_EQ(box.Dimension(), 3u);
  EXPECT_EQ(box.NumUnits(), 24u);
  for (size_t u = 0; u < box.NumUnits(); ++u) {
    EXPECT_EQ(box.LinearIndex(box.AxisUnits(u)), u);
    EXPECT_DOUBLE_EQ(box.Measure(u), 1.0);
  }
}

TEST(BoxPartition, Locate3d) {
  auto x = std::move(IntervalPartition::Uniform(0, 10, 2)).ValueOrDie();
  auto box = std::move(BoxPartition::Create({x, x, x})).ValueOrDie();
  auto unit = box.Locate({7.0, 2.0, 7.0});
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(box.AxisUnits(*unit), (std::vector<size_t>{1, 0, 1}));
  EXPECT_FALSE(box.Locate({7.0, 2.0}).ok());
  EXPECT_FALSE(box.Locate({7.0, 2.0, 11.0}).ok());
}

TEST(OverlayBoxes, MatchesProductOfAxisOverlays) {
  auto sx = std::move(IntervalPartition::Create({0, 3, 10})).ValueOrDie();
  auto sy = std::move(IntervalPartition::Create({0, 5, 10})).ValueOrDie();
  auto tx = std::move(IntervalPartition::Create({0, 6, 10})).ValueOrDie();
  auto ty = std::move(IntervalPartition::Create({0, 2, 10})).ValueOrDie();
  auto s = std::move(BoxPartition::Create({sx, sy})).ValueOrDie();
  auto t = std::move(BoxPartition::Create({tx, ty})).ValueOrDie();
  auto ov = std::move(OverlayBoxes(s, t)).ValueOrDie();
  EXPECT_NEAR(ov.TotalMeasure(), 100.0, 1e-9);
  // Check one cell: source unit (x in [0,3), y in [0,5)) x target unit
  // (x in [0,6), y in [0,2)) -> 3 * 2 = 6.
  sparse::CsrMatrix dm = ov.MeasureDm();
  size_t s_unit = s.LinearIndex({0, 0});
  size_t t_unit = t.LinearIndex({0, 0});
  EXPECT_DOUBLE_EQ(dm.At(s_unit, t_unit), 6.0);
}

TEST(OverlayBoxes, DimensionMismatchRejected) {
  auto x = std::move(IntervalPartition::Uniform(0, 1, 2)).ValueOrDie();
  auto a = std::move(BoxPartition::Create({x})).ValueOrDie();
  auto b = std::move(BoxPartition::Create({x, x})).ValueOrDie();
  EXPECT_FALSE(OverlayBoxes(a, b).ok());
}

PolygonPartition MakeGridLayer(double x0, double y0, size_t nx, size_t ny,
                               double cell) {
  std::vector<Polygon> polys;
  for (size_t j = 0; j < ny; ++j) {
    for (size_t i = 0; i < nx; ++i) {
      polys.push_back(Polygon::FromBBox(BBox(
          x0 + i * cell, y0 + j * cell, x0 + (i + 1) * cell,
          y0 + (j + 1) * cell)));
    }
  }
  return std::move(PolygonPartition::Create(std::move(polys))).ValueOrDie();
}

TEST(PolygonPartition, LocateAndMeasure) {
  PolygonPartition layer = MakeGridLayer(0, 0, 3, 2, 1.0);
  EXPECT_EQ(layer.NumUnits(), 6u);
  EXPECT_DOUBLE_EQ(layer.TotalMeasure(), 6.0);
  EXPECT_EQ(std::move(layer.Locate({2.5, 1.5})).ValueOrDie(), 5u);
  EXPECT_FALSE(layer.Locate({10.0, 10.0}).ok());
}

TEST(PolygonPartition, ValidateDisjointDetectsOverlap) {
  PolygonPartition good = MakeGridLayer(0, 0, 2, 2, 1.0);
  EXPECT_TRUE(good.ValidateDisjoint().ok());
  std::vector<Polygon> bad = {
      Polygon::FromBBox(BBox(0, 0, 2, 2)),
      Polygon::FromBBox(BBox(1, 1, 3, 3)),
  };
  auto layer = std::move(PolygonPartition::Create(bad)).ValueOrDie();
  EXPECT_FALSE(layer.ValidateDisjoint().ok());
}

TEST(OverlayPolygons, ShiftedGridsProduceQuarterCells) {
  // 2x2 unit grid vs the same grid shifted by (0.5, 0.5): interior
  // intersections are 0.5 x 0.5 squares.
  PolygonPartition source = MakeGridLayer(0, 0, 2, 2, 1.0);
  PolygonPartition target = MakeGridLayer(0.5, 0.5, 2, 2, 1.0);
  auto ov = std::move(OverlayPolygons(source, target, 1e-9)).ValueOrDie();
  // Shared region is [0.5,2]x[0.5,2] = 2.25.
  EXPECT_NEAR(ov.TotalMeasure(), 2.25, 1e-9);
  for (const IntersectionCell& c : ov.cells) {
    EXPECT_GT(c.measure, 0.0);
    EXPECT_LE(c.measure, 1.0 + 1e-12);
  }
  // Source unit 3 ([1,2]x[1,2]) intersects all four shifted units.
  sparse::CsrMatrix dm = ov.MeasureDm();
  EXPECT_NEAR(dm.At(3, 0), 0.25, 1e-9);
  EXPECT_NEAR(dm.At(3, 3), 0.25, 1e-9);
}

TEST(OverlayPolygons, VoronoiVsGridConservesArea) {
  Rng rng(71);
  BBox box(0, 0, 8, 8);
  std::vector<Point> sites;
  for (int i = 0; i < 30; ++i) {
    sites.push_back({rng.Uniform(0.0, 8.0), rng.Uniform(0.0, 8.0)});
  }
  auto cells = std::move(geom::VoronoiCells(sites, box)).ValueOrDie();
  std::vector<Polygon> polys;
  for (auto& ring : cells) {
    if (ring.size() >= 3) polys.emplace_back(std::move(ring));
  }
  auto vor = std::move(PolygonPartition::Create(std::move(polys))).ValueOrDie();
  PolygonPartition grid = MakeGridLayer(0, 0, 4, 4, 2.0);
  auto ov = std::move(OverlayPolygons(vor, grid, 1e-12)).ValueOrDie();
  EXPECT_NEAR(ov.TotalMeasure(), 64.0, 1e-6);
  // Row sums equal Voronoi cell areas; column sums equal grid areas.
  sparse::CsrMatrix dm = ov.MeasureDm();
  linalg::Vector rows = dm.RowSums();
  for (size_t i = 0; i < vor.NumUnits(); ++i) {
    EXPECT_NEAR(rows[i], vor.Measure(i), 1e-6);
  }
  linalg::Vector cols = dm.ColSums();
  for (size_t j = 0; j < grid.NumUnits(); ++j) {
    EXPECT_NEAR(cols[j], 4.0, 1e-6);
  }
}

AtomSpace MakeAtoms(size_t n, double measure = 1.0) {
  AtomSpace atoms;
  atoms.measures.assign(n, measure);
  return atoms;
}

TEST(CellPartition, CreateValidates) {
  AtomSpace atoms = MakeAtoms(4);
  EXPECT_FALSE(CellPartition::Create(nullptr, {0, 0, 1, 1}, 2).ok());
  EXPECT_FALSE(CellPartition::Create(&atoms, {0, 0, 1}, 2).ok());
  EXPECT_FALSE(CellPartition::Create(&atoms, {0, 0, 1, 2}, 2).ok());
  EXPECT_FALSE(CellPartition::Create(&atoms, {0, 0, 0, 0}, 2).ok());  // empty unit 1
  EXPECT_TRUE(CellPartition::Create(&atoms, {0, 0, 1, 1}, 2).ok());
}

TEST(CellPartition, MeasuresAndAggregation) {
  AtomSpace atoms;
  atoms.measures = {1.0, 2.0, 3.0, 4.0};
  auto p = std::move(CellPartition::Create(&atoms, {0, 1, 0, 1}, 2)).ValueOrDie();
  EXPECT_DOUBLE_EQ(p.Measure(0), 4.0);
  EXPECT_DOUBLE_EQ(p.Measure(1), 6.0);
  linalg::Vector agg = p.AggregateAtomValues({10.0, 20.0, 30.0, 40.0});
  EXPECT_EQ(agg, (linalg::Vector{40.0, 60.0}));
}

TEST(OverlayCells, ExactLabelJoin) {
  AtomSpace atoms = MakeAtoms(6);
  auto s = std::move(CellPartition::Create(&atoms, {0, 0, 1, 1, 2, 2}, 3)).ValueOrDie();
  auto t = std::move(CellPartition::Create(&atoms, {0, 1, 1, 1, 1, 0}, 2)).ValueOrDie();
  auto ov = std::move(OverlayCells(s, t)).ValueOrDie();
  EXPECT_EQ(ov.num_source, 3u);
  EXPECT_EQ(ov.num_target, 2u);
  // Cells: (0,0):1, (0,1):1, (1,1):2, (2,0):1, (2,1):1 -> 5 cells.
  EXPECT_EQ(ov.cells.size(), 5u);
  EXPECT_NEAR(ov.TotalMeasure(), 6.0, 1e-12);
  // Sorted by (source, target).
  for (size_t k = 1; k < ov.cells.size(); ++k) {
    const auto& a = ov.cells[k - 1];
    const auto& b = ov.cells[k];
    EXPECT_TRUE(a.source < b.source ||
                (a.source == b.source && a.target < b.target));
  }
  // atom_to_cell consistency.
  ASSERT_EQ(ov.atom_to_cell.size(), 6u);
  for (size_t a = 0; a < 6; ++a) {
    const IntersectionCell& c = ov.cells[ov.atom_to_cell[a]];
    EXPECT_EQ(c.source, s.LabelOf(a));
    EXPECT_EQ(c.target, t.LabelOf(a));
  }
}

TEST(OverlayCells, RequiresSharedAtomSpace) {
  AtomSpace a1 = MakeAtoms(2);
  AtomSpace a2 = MakeAtoms(2);
  auto s = std::move(CellPartition::Create(&a1, {0, 1}, 2)).ValueOrDie();
  auto t = std::move(CellPartition::Create(&a2, {0, 1}, 2)).ValueOrDie();
  EXPECT_FALSE(OverlayCells(s, t).ok());
}

TEST(Disaggregation, DmFromAtomValuesIsExact) {
  AtomSpace atoms = MakeAtoms(6);
  auto s = std::move(CellPartition::Create(&atoms, {0, 0, 1, 1, 2, 2}, 3)).ValueOrDie();
  auto t = std::move(CellPartition::Create(&atoms, {0, 1, 1, 1, 1, 0}, 2)).ValueOrDie();
  auto ov = std::move(OverlayCells(s, t)).ValueOrDie();
  linalg::Vector values = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  auto dm = std::move(DmFromAtomValues(ov, values)).ValueOrDie();
  EXPECT_DOUBLE_EQ(dm.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(dm.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(dm.At(1, 1), 7.0);
  EXPECT_DOUBLE_EQ(dm.At(2, 0), 6.0);
  EXPECT_DOUBLE_EQ(dm.At(2, 1), 5.0);
  // Row sums match source aggregates; column sums match target.
  EXPECT_TRUE(linalg::AllClose(dm.RowSums(), s.AggregateAtomValues(values),
                               1e-12));
  EXPECT_TRUE(linalg::AllClose(dm.ColSums(), t.AggregateAtomValues(values),
                               1e-12));
}

TEST(Disaggregation, DmFromPointsMatchesManualCount) {
  PolygonPartition source = MakeGridLayer(0, 0, 2, 1, 1.0);  // two columns
  PolygonPartition target = MakeGridLayer(0, 0, 1, 2, 0.5);  // 1x2 of 0.5...
  // target: cells [0,0.5]x[0,0.5] and [0,0.5]x[0.5,1].
  std::vector<Point> pts = {{0.25, 0.25}, {0.25, 0.75}, {0.3, 0.2}};
  linalg::Vector w = {1.0, 1.0, 2.0};
  size_t dropped = 0;
  auto dm = std::move(DmFromPoints(source, target, pts, w, &dropped)).ValueOrDie();
  EXPECT_EQ(dropped, 0u);
  EXPECT_DOUBLE_EQ(dm.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(dm.At(0, 1), 1.0);
  // Points outside the target layer are dropped.
  std::vector<Point> outside = {{1.5, 0.9}};
  auto dm2 = std::move(DmFromPoints(source, target, outside, {1.0}, &dropped)).ValueOrDie();
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(dm2.nnz(), 0u);
}

TEST(Disaggregation, AggregatePoints) {
  PolygonPartition layer = MakeGridLayer(0, 0, 2, 2, 1.0);
  std::vector<Point> pts = {{0.5, 0.5}, {1.5, 0.5}, {1.5, 1.5}, {9.0, 9.0}};
  linalg::Vector w = {1.0, 2.0, 3.0, 4.0};
  size_t dropped = 0;
  linalg::Vector agg = AggregatePoints(layer, pts, w, &dropped);
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(agg, (linalg::Vector{1.0, 2.0, 0.0, 3.0}));
}

TEST(Disaggregation, CheckDmConsistency) {
  sparse::CooBuilder b(2, 2);
  b.Add(0, 0, 1.0);
  b.Add(0, 1, 2.0);
  b.Add(1, 0, 5.0);
  sparse::CsrMatrix dm = b.Build();
  EXPECT_TRUE(CheckDmConsistency(dm, {3.0, 5.0}).ok());
  EXPECT_FALSE(CheckDmConsistency(dm, {3.0, 6.0}).ok());
  EXPECT_FALSE(CheckDmConsistency(dm, {3.0}).ok());
}

}  // namespace
}  // namespace geoalign::partition
