// UBSan regression coverage (docs/static_analysis.md).
//
// These tests pin down the edge paths most likely to hide latent UB —
// zero denominators, empty shapes, degenerate solver inputs — and are
// expected to run in the UBSan leg of tools/ci.sh, where
// -fno-sanitize-recover=all turns any division-by-zero, overflow, or
// out-of-bounds access on these paths into a hard test failure. They
// also assert the documented fallback *values*, so they are meaningful
// (if weaker) in non-sanitized builds.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "linalg/simplex_ls.h"
#include "sparse/coo_builder.h"
#include "sparse/csr_matrix.h"
#include "sparse/sparse_ops.h"

namespace geoalign {
namespace {

using linalg::Matrix;
using linalg::SolveSimplexLeastSquares;
using linalg::Vector;
using sparse::CooBuilder;
using sparse::CsrMatrix;

CsrMatrix Dense3x2() {
  CooBuilder b(3, 2);
  b.Add(0, 0, 2.0);
  b.Add(0, 1, 4.0);
  b.Add(1, 0, -1.0);
  b.Add(2, 1, 8.0);
  return b.Build();
}

// Eq. 14 "otherwise 0" branch: rows whose denominator is (absolutely)
// within zero_tol must come back entirely zero, not divided by zero.
TEST(UbsanRegression, DivideRowsOrZeroZeroDenominator) {
  CsrMatrix m = Dense3x2();
  Vector denom = {2.0, 0.0, -0.0};  // exact zero and negative zero
  std::vector<size_t> zero_rows;
  sparse::DivideRowsOrZero(m, denom, /*zero_tol=*/0.0, &zero_rows);
  EXPECT_EQ(zero_rows, (std::vector<size_t>{1, 2}));
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 0.0);
}

TEST(UbsanRegression, DivideRowsOrZeroSubTolerance) {
  CsrMatrix m = Dense3x2();
  // Denominators below the tolerance must take the zero branch even
  // though 1.0 / denom would be finite (if enormous).
  Vector denom = {1e-30, 1.0, 1e-30};
  std::vector<size_t> zero_rows;
  sparse::DivideRowsOrZero(m, denom, /*zero_tol=*/1e-12, &zero_rows);
  EXPECT_EQ(zero_rows, (std::vector<size_t>{0, 2}));
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), -1.0);
}

TEST(UbsanRegression, DivideRowsOrZeroAllZeroAndEmpty) {
  CsrMatrix all = Dense3x2();
  Vector zeros(3, 0.0);
  std::vector<size_t> zero_rows;
  sparse::DivideRowsOrZero(all, zeros, 0.0, &zero_rows);
  EXPECT_EQ(zero_rows, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(all.nnz(), 0u);  // fully pruned

  CsrMatrix empty(0, 4);
  Vector no_denom;
  std::vector<size_t> none;
  sparse::DivideRowsOrZero(empty, no_denom, 0.0, &none);
  EXPECT_TRUE(none.empty());
}

// The parallel fallback path must agree with the sequential one on the
// degenerate inputs too, not only on the benchmark shapes.
TEST(UbsanRegression, DivideRowsOrZeroParallelMatchesSequential) {
  Vector denom = {2.0, 0.0, 1e-30};
  CsrMatrix seq = Dense3x2();
  std::vector<size_t> seq_zero;
  sparse::DivideRowsOrZero(seq, denom, 1e-12, &seq_zero);

  common::ThreadPool pool(4);
  CsrMatrix par = Dense3x2();
  std::vector<size_t> par_zero;
  sparse::DivideRowsOrZero(par, denom, 1e-12, &par_zero, &pool);

  EXPECT_EQ(seq_zero, par_zero);
  ASSERT_EQ(seq.nnz(), par.nnz());
  EXPECT_EQ(seq.values(), par.values());
}

// Simplex solver (Eq. 15) degenerate shapes: every early-exit must be
// a clean Status, never an out-of-bounds Gram access or 0/0.
TEST(UbsanRegression, SimplexRejectsDegenerateShapes) {
  Matrix empty;
  EXPECT_FALSE(SolveSimplexLeastSquares(empty, {}).ok());

  Matrix no_cols(3, 0);
  EXPECT_FALSE(SolveSimplexLeastSquares(no_cols, {1.0, 2.0, 3.0}).ok());

  Matrix mismatched(3, 2);
  EXPECT_FALSE(SolveSimplexLeastSquares(mismatched, {1.0}).ok());
}

TEST(UbsanRegression, SimplexZeroMatrixAndZeroRhs) {
  // All-zero design: any simplex point is optimal; the solver must
  // still terminate at a feasible point without dividing by the zero
  // Gram diagonal.
  Matrix zero_a(2, 2);
  auto zero_sol = SolveSimplexLeastSquares(zero_a, {0.0, 0.0});
  ASSERT_TRUE(zero_sol.ok());
  double sum = 0.0;
  for (double v : zero_sol->beta) {
    EXPECT_GE(v, -1e-12);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);

  // Zero rhs with a real design: optimum is the simplex point of
  // minimum norm in A's metric; residual must be finite, not NaN.
  Matrix a = Matrix::FromColumns({{1.0, 0.0}, {0.0, 2.0}});
  auto sol = SolveSimplexLeastSquares(a, {0.0, 0.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(std::isfinite(sol->residual_norm));
  EXPECT_NEAR(sol->beta[0] + sol->beta[1], 1.0, 1e-9);
}

TEST(UbsanRegression, SimplexIdenticalColumnsSingularKkt) {
  // Every column identical: the KKT system is maximally singular and
  // the ridge fallback carries the whole solve.
  Matrix a = Matrix::FromColumns({{1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0}});
  auto sol = SolveSimplexLeastSquares(a, {1.0, 2.0});
  ASSERT_TRUE(sol.ok());
  double sum = 0.0;
  for (double v : sol->beta) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(sol->residual_norm, 0.0, 1e-6);
}

TEST(UbsanRegression, SimplexSingleRowWideMatrix) {
  // One observation, many references — heavily underdetermined.
  Matrix a = Matrix::FromColumns({{2.0}, {3.0}, {5.0}});
  auto sol = SolveSimplexLeastSquares(a, {4.0});
  ASSERT_TRUE(sol.ok());
  double sum = 0.0;
  double fit = 0.0;
  for (size_t k = 0; k < sol->beta.size(); ++k) {
    sum += sol->beta[k];
    fit += sol->beta[k] * a(0, k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(fit, 4.0, 1e-8);
}

}  // namespace
}  // namespace geoalign
