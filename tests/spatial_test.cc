// Unit tests for the spatial index substrate: STR R-tree and point
// grid index, checked against brute force on random data.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "spatial/grid_index.h"
#include "spatial/rtree.h"

namespace geoalign::spatial {
namespace {

using geom::BBox;
using geom::Point;

TEST(RTree, EmptyTree) {
  RTree tree({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Query(BBox(0, 0, 1, 1)).empty());
}

TEST(RTree, SingleItem) {
  RTree tree({BBox(0, 0, 1, 1)});
  EXPECT_EQ(tree.Query(BBox(0.5, 0.5, 2, 2)), std::vector<uint32_t>{0});
  EXPECT_TRUE(tree.Query(BBox(2, 2, 3, 3)).empty());
}

TEST(RTree, QueryPointHitsContainingBoxes) {
  std::vector<BBox> boxes = {BBox(0, 0, 2, 2), BBox(1, 1, 3, 3),
                             BBox(5, 5, 6, 6)};
  RTree tree(boxes);
  auto hits = tree.QueryPoint({1.5, 1.5});
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint32_t>{0, 1}));
}

TEST(RTree, VisitEarlyStop) {
  std::vector<BBox> boxes(100, BBox(0, 0, 1, 1));
  RTree tree(boxes);
  int count = 0;
  tree.Visit(BBox(0, 0, 1, 1), [&count](uint32_t) {
    ++count;
    return count < 5;
  });
  EXPECT_EQ(count, 5);
}

class RTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeRandomTest, MatchesBruteForce) {
  Rng rng(700 + GetParam());
  size_t n = 1 + rng.UniformInt(uint64_t{500});
  std::vector<BBox> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.Uniform(0.0, 100.0);
    double y = rng.Uniform(0.0, 100.0);
    boxes.emplace_back(x, y, x + rng.Uniform(0.0, 10.0),
                       y + rng.Uniform(0.0, 10.0));
  }
  RTree tree(boxes, /*max_entries_per_node=*/4 + GetParam() % 13);
  for (int q = 0; q < 20; ++q) {
    double x = rng.Uniform(-5.0, 105.0);
    double y = rng.Uniform(-5.0, 105.0);
    BBox query(x, y, x + rng.Uniform(0.0, 20.0), y + rng.Uniform(0.0, 20.0));
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < n; ++i) {
      if (boxes[i].Intersects(query)) expected.push_back(i);
    }
    std::vector<uint32_t> got = tree.Query(query);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, RTreeRandomTest,
                         ::testing::Range(0, 15));

TEST(RTree, HeightGrowsLogarithmically) {
  std::vector<BBox> boxes;
  for (int i = 0; i < 1000; ++i) {
    boxes.emplace_back(i, 0, i + 0.5, 0.5);
  }
  RTree tree(boxes, 16);
  EXPECT_GE(tree.Height(), 2u);
  EXPECT_LE(tree.Height(), 4u);
}

TEST(PointGridIndex, NearestSimple) {
  std::vector<Point> pts = {{0, 0}, {10, 10}, {5, 5}};
  PointGridIndex index(pts, BBox(0, 0, 10, 10));
  EXPECT_EQ(index.Nearest({1, 1}), 0u);
  EXPECT_EQ(index.Nearest({9, 9}), 1u);
  EXPECT_EQ(index.Nearest({5.2, 4.9}), 2u);
}

TEST(PointGridIndex, NearestTieBreaksByIndex) {
  std::vector<Point> pts = {{1, 1}, {3, 1}};
  PointGridIndex index(pts, BBox(0, 0, 4, 2));
  EXPECT_EQ(index.Nearest({2, 1}), 0u);  // equidistant -> lower index
}

class GridIndexRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(GridIndexRandomTest, NearestMatchesBruteForce) {
  Rng rng(800 + GetParam());
  size_t n = 1 + rng.UniformInt(uint64_t{300});
  BBox box(0, 0, 50, 30);
  std::vector<Point> pts;
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 30.0)});
  }
  PointGridIndex index(pts, box);
  for (int q = 0; q < 50; ++q) {
    Point query{rng.Uniform(0.0, 50.0), rng.Uniform(0.0, 30.0)};
    uint32_t got = index.Nearest(query);
    double best = 1e300;
    uint32_t expected = 0;
    for (uint32_t i = 0; i < n; ++i) {
      double d = geom::DistanceSquared(query, pts[i]);
      if (d < best) {
        best = d;
        expected = i;
      }
    }
    EXPECT_EQ(geom::DistanceSquared(query, pts[got]), best);
    (void)expected;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GridIndexRandomTest,
                         ::testing::Range(0, 15));

TEST(PointGridIndex, WithinRadiusMatchesBruteForce) {
  Rng rng(55);
  BBox box(0, 0, 20, 20);
  std::vector<Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)});
  }
  PointGridIndex index(pts, box);
  for (int q = 0; q < 20; ++q) {
    Point center{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)};
    double radius = rng.Uniform(0.0, 6.0);
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < pts.size(); ++i) {
      if (geom::DistanceSquared(center, pts[i]) <= radius * radius) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(index.WithinRadius(center, radius), expected);
  }
}

TEST(PointGridIndex, WithinRadiusNegativeRadiusEmpty) {
  PointGridIndex index({{1, 1}}, BBox(0, 0, 2, 2));
  EXPECT_TRUE(index.WithinRadius({1, 1}, -1.0).empty());
}

}  // namespace
}  // namespace geoalign::spatial
