// Unit tests for the deterministic parallel execution layer: pool
// startup/shutdown, exception propagation out of tasks, chunk
// geometry, and ParallelFor / ParallelReduceOrdered over empty,
// 1-element, and odd-sized ranges at several thread counts.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace geoalign::common {
namespace {

TEST(ThreadPool, StartupAndShutdownAtManySizes) {
  for (size_t n : {1, 2, 3, 7, 16}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.size(), n);
  }  // destructor joins with an empty queue
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // destructor must run all 64 before joining
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<void> ok = pool.Submit([] {});
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(DeterministicChunks, EmptyRange) {
  EXPECT_TRUE(DeterministicChunks(0, 8).empty());
}

TEST(DeterministicChunks, CoversRangeExactlyOnce) {
  for (size_t n : {1, 2, 7, 17, 100, 101, 1023}) {
    for (size_t grain : {1, 3, 8, 1000}) {
      std::vector<ChunkRange> chunks = DeterministicChunks(n, grain);
      ASSERT_FALSE(chunks.empty());
      EXPECT_EQ(chunks.front().begin, 0u);
      EXPECT_EQ(chunks.back().end, n);
      for (size_t c = 1; c < chunks.size(); ++c) {
        EXPECT_EQ(chunks[c].begin, chunks[c - 1].end);
        EXPECT_LT(chunks[c].begin, chunks[c].end);
      }
    }
  }
}

TEST(DeterministicChunks, ChunkCountIsBounded) {
  EXPECT_LE(DeterministicChunks(1 << 20, 1).size(), kMaxChunks);
}

TEST(DeterministicChunks, IndependentOfNothingButNAndGrain) {
  // The contract: same (n, grain) -> same boundaries, every time.
  std::vector<ChunkRange> a = DeterministicChunks(12345, 7);
  std::vector<ChunkRange> b = DeterministicChunks(12345, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].begin, b[c].begin);
    EXPECT_EQ(a[c].end, b[c].end);
  }
}

// ParallelFor / reduction behavior at several pool configurations,
// including the inline (no pool) path.
class ParallelForTest : public ::testing::TestWithParam<size_t> {
 protected:
  // GetParam() == 0 means "no pool" (inline execution).
  std::unique_ptr<ThreadPool> MakePool() const {
    return GetParam() == 0 ? nullptr : std::make_unique<ThreadPool>(GetParam());
  }
};

TEST_P(ParallelForTest, EmptyRangeNeverCallsBody) {
  std::unique_ptr<ThreadPool> pool = MakePool();
  std::atomic<int> calls{0};
  ParallelFor(pool.get(), 0, 4,
              [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST_P(ParallelForTest, SingleElementRange) {
  std::unique_ptr<ThreadPool> pool = MakePool();
  std::vector<int> visits(1, 0);
  ParallelFor(pool.get(), 1, 4, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++visits[i];
  });
  EXPECT_EQ(visits[0], 1);
}

TEST_P(ParallelForTest, OddSizedRangesVisitEveryIndexOnce) {
  std::unique_ptr<ThreadPool> pool = MakePool();
  for (size_t n : {3, 7, 17, 101}) {
    // Chunks own disjoint index ranges, so plain ints are race-free.
    std::vector<int> visits(n, 0);
    ParallelFor(pool.get(), n, 4, [&](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) ++visits[i];
    });
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i], 1) << "index " << i;
  }
}

TEST_P(ParallelForTest, ChunkExceptionPropagates) {
  std::unique_ptr<ThreadPool> pool = MakePool();
  EXPECT_THROW(
      ParallelFor(pool.get(), 32, 4,
                  [&](size_t chunk, size_t, size_t) {
                    if (chunk >= 2) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST_P(ParallelForTest, OrderedReductionIsBitIdenticalAcrossThreadCounts) {
  // An accumulation whose result depends on the float summation order;
  // the fixed chunking + ordered combine must make every pool size
  // agree to the last bit.
  constexpr size_t kN = 10007;  // odd, not a multiple of any grain
  auto run = [](ThreadPool* pool) {
    return ParallelReduceOrdered<double>(
        pool, kN, 64, 0.0,
        [](size_t begin, size_t end) {
          double acc = 0.0;
          for (size_t i = begin; i < end; ++i) {
            acc += std::sin(static_cast<double>(i)) * 1e-3 + 1.0 / (i + 1.0);
          }
          return acc;
        },
        [](double& acc, double&& part) { acc += part; });
  };
  std::unique_ptr<ThreadPool> pool = MakePool();
  double with_pool = run(pool.get());
  double inline_result = run(nullptr);
  // Exact equality on purpose: this is the determinism contract.
  EXPECT_EQ(with_pool, inline_result);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ParallelForTest,
                         ::testing::Values(0, 1, 2, 7));

TEST(ParallelReduceOrdered, EmptyRangeReturnsInit) {
  double out = ParallelReduceOrdered<double>(
      nullptr, 0, 8, 42.0, [](size_t, size_t) { return 1.0; },
      [](double& acc, double&& part) { acc += part; });
  EXPECT_EQ(out, 42.0);
}

TEST(ResolveThreadCount, ZeroMeansHardware) {
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(5), 5u);
}

TEST(MakePoolOrNull, InlineBelowTwoThreads) {
  EXPECT_EQ(MakePoolOrNull(0), nullptr);
  EXPECT_EQ(MakePoolOrNull(1), nullptr);
  std::unique_ptr<ThreadPool> pool = MakePoolOrNull(3);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->size(), 3u);
}

}  // namespace
}  // namespace geoalign::common
