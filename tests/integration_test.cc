// Integration tests exercising the whole stack end to end: synthetic
// universes -> overlays -> interpolators -> metrics, plus the
// paper-level qualitative claims at reduced scale.

#include <gtest/gtest.h>

#include <cmath>

#include "core/pycnophylactic.h"
#include "eval/cross_validation.h"
#include "eval/metrics.h"
#include "eval/noise.h"
#include "eval/reference_selection.h"
#include "geom/voronoi.h"
#include "linalg/stats.h"
#include "partition/disaggregation.h"
#include "partition/overlay.h"
#include "synth/point_process.h"
#include "synth/universe.h"

namespace geoalign {
namespace {

const synth::Universe& SmallUs() {
  static synth::Universe* uni = [] {
    synth::UniverseOptions opts;
    opts.scale = 0.05;
    opts.seed = 2024;
    opts.suite = synth::SuiteKind::kUnitedStates;
    return new synth::Universe(std::move(
        synth::BuildUniverse(synth::UniverseId::kNortheast, opts)).ValueOrDie());
  }();
  return *uni;
}

TEST(Integration, GeoAlignBeatsArealWeightingOverall) {
  auto report = std::move(eval::RunCrossValidation(SmallUs())).ValueOrDie();
  double ga = report.MeanNrmse("GeoAlign");
  double aw = report.MeanNrmse("areal_weighting");
  EXPECT_LT(ga, aw) << "GeoAlign " << ga << " vs areal weighting " << aw;
}

TEST(Integration, GeoAlignNeverFarBehindBestDasymetric) {
  // Paper Fig. 5: no single dasymetric reference wins everywhere, but
  // GeoAlign tracks the best one on every dataset.
  auto report = std::move(eval::RunCrossValidation(SmallUs())).ValueOrDie();
  for (const auto& d : SmallUs().datasets) {
    double ga = report.Lookup(d.name, "GeoAlign");
    double best = 1e300;
    for (const char* m :
         {"dasymetric(Population)", "dasymetric(USPS Residential Address)",
          "dasymetric(USPS Business Address)"}) {
      double v = report.Lookup(d.name, m);
      if (!std::isnan(v)) best = std::min(best, v);
    }
    EXPECT_LT(ga, best * 1.5 + 0.02) << d.name;
  }
}

TEST(Integration, NoiseRobustnessRatiosNearOne) {
  // Paper §4.4.1 at reduced scale: 20% noise should not blow up the
  // error (mean prediction deviation stays near 1).
  const synth::Universe& uni = SmallUs();
  core::GeoAlign geoalign;
  Rng rng(31337);
  double worst_ratio = 0.0;
  double ratio_sum = 0.0;
  int ratio_count = 0;
  for (size_t t = 0; t < uni.datasets.size(); ++t) {
    auto input = std::move(uni.MakeLeaveOneOutInput(t)).ValueOrDie();
    auto clean = std::move(geoalign.Crosswalk(input)).ValueOrDie();
    double clean_rmse =
        eval::Rmse(clean.target_estimates, uni.datasets[t].target);
    // Ratios are only meaningful when the clean error is not at the
    // exactness floor (a dataset with no straddling mass is estimated
    // perfectly, making any perturbation an infinite "ratio").
    if (eval::Nrmse(clean.target_estimates, uni.datasets[t].target) < 0.01) {
      continue;
    }
    double acc = 0.0;
    const int reps = 5;
    for (int r = 0; r < reps; ++r) {
      core::CrosswalkInput noisy = eval::PerturbReferences(input, 20.0, rng);
      auto res = std::move(geoalign.Crosswalk(noisy)).ValueOrDie();
      acc += eval::Rmse(res.target_estimates, uni.datasets[t].target);
    }
    double ratio = (acc / reps) / std::max(clean_rmse, 1e-12);
    worst_ratio = std::max(worst_ratio, ratio);
    ratio_sum += ratio;
    ++ratio_count;
  }
  ASSERT_GT(ratio_count, 0);
  // With the volume-preserving denominator (DM row sums), aggregate
  // noise only moves the learned weights, so deviations stay near 1
  // (paper Fig. 7).
  EXPECT_LT(ratio_sum / ratio_count, 1.5);
  EXPECT_LT(worst_ratio, 3.0);
}

TEST(Integration, LeavingLeastRelatedReferencesOutIsHarmless) {
  auto cells = std::move(eval::RunReferenceSelection(SmallUs())).ValueOrDie();
  // Compare leave-least-out vs all, averaged over datasets (paper
  // §4.4.2: "almost identical").
  double all = 0.0;
  double least1 = 0.0;
  int n = 0;
  for (const auto& c : cells) {
    if (c.policy == eval::SubsetPolicy::kAll) {
      all += c.nrmse;
      ++n;
    }
    if (c.policy == eval::SubsetPolicy::kLeastRelatedOut && c.n_out == 1) {
      least1 += c.nrmse;
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_NEAR(least1 / n, all / n, 0.05 + 0.5 * all / n);
}

TEST(Integration, PolygonOverlayPathAgreesWithCellPath) {
  // Build a little world twice: once as polygons (Voronoi zips vs a
  // grid of counties) and once as the equivalent point data, and check
  // that the two DM construction paths agree.
  Rng rng(99);
  geom::BBox box(0, 0, 12, 12);
  std::vector<geom::Point> sites;
  for (int i = 0; i < 40; ++i) {
    sites.push_back({rng.Uniform(0.2, 11.8), rng.Uniform(0.2, 11.8)});
  }
  auto rings = std::move(geom::VoronoiCells(sites, box)).ValueOrDie();
  std::vector<geom::Polygon> zips;
  for (auto& r : rings) zips.emplace_back(std::move(r));
  auto zip_layer = std::move(partition::PolygonPartition::Create(zips)).ValueOrDie();
  std::vector<geom::Polygon> counties;
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 3; ++i) {
      counties.push_back(geom::Polygon::FromBBox(
          geom::BBox(i * 4.0, j * 4.0, (i + 1) * 4.0, (j + 1) * 4.0)));
    }
  }
  auto county_layer = std::move(partition::PolygonPartition::Create(counties)).ValueOrDie();

  // Point dataset.
  auto pts = synth::SampleThomasProcess(box, 15, 40.0, 0.8, rng);
  linalg::Vector weights(pts.size(), 1.0);
  auto dm = std::move(partition::DmFromPoints(zip_layer, county_layer, pts,
                                              weights)).ValueOrDie();
  // DM marginals agree with direct aggregation.
  linalg::Vector by_zip =
      partition::AggregatePoints(zip_layer, pts, weights);
  linalg::Vector by_county =
      partition::AggregatePoints(county_layer, pts, weights);
  EXPECT_TRUE(linalg::AllClose(dm.RowSums(), by_zip, 1e-9));
  EXPECT_TRUE(linalg::AllClose(dm.ColSums(), by_county, 1e-9));

  // Dasymetric realignment through the geometric path reproduces the
  // county truth when the objective IS the reference's point set.
  core::CrosswalkInput input;
  input.objective_source = by_zip;
  core::ReferenceAttribute ref;
  ref.name = "points";
  ref.source_aggregates = by_zip;
  ref.disaggregation = dm;
  input.references.push_back(std::move(ref));
  core::GeoAlign geoalign;
  auto res = std::move(geoalign.Crosswalk(input)).ValueOrDie();
  EXPECT_TRUE(linalg::AllClose(res.target_estimates, by_county, 1e-6));

  // Areal weighting via the geometric overlay is sane: conserves mass.
  auto ov = std::move(partition::OverlayPolygons(zip_layer, county_layer,
                                                 1e-9)).ValueOrDie();
  core::ArealWeighting areal(ov.MeasureDm());
  auto aw = std::move(areal.Crosswalk(input)).ValueOrDie();
  EXPECT_NEAR(linalg::Sum(aw.target_estimates), linalg::Sum(by_zip),
              linalg::Sum(by_zip) * 1e-6);
}

TEST(Integration, PycnophylacticVsGeoAlignOnSyntheticGrid) {
  // Tobler smoothing should beat naive areal weighting on a smooth
  // field; GeoAlign with a good reference should beat both.
  const synth::Universe& uni = SmallUs();
  const synth::SyntheticGeography& geo = *uni.geography;
  // Use state 0's raster only (rectangular by construction).
  auto raster = geo.state_raster(0);
  size_t n_atoms = raster.nx * raster.ny;
  // Build dense per-state labels.
  std::vector<uint32_t> src(n_atoms);
  std::vector<uint32_t> tgt(n_atoms);
  uint32_t max_src = 0;
  uint32_t max_tgt = 0;
  for (size_t a = 0; a < n_atoms; ++a) {
    src[a] = geo.zips().LabelOf(raster.atom_offset + a);
    tgt[a] = geo.counties().LabelOf(raster.atom_offset + a);
    max_src = std::max(max_src, src[a]);
    max_tgt = std::max(max_tgt, tgt[a]);
  }
  //

  const synth::Dataset& pop = uni.datasets[std::move(
      uni.FindDataset("Population")).ValueOrDie()];
  linalg::Vector objective(max_src + 1, 0.0);
  for (size_t a = 0; a < n_atoms; ++a) {
    objective[src[a]] += pop.atom_values[raster.atom_offset + a];
  }
  linalg::Vector truth(max_tgt + 1, 0.0);
  for (size_t a = 0; a < n_atoms; ++a) {
    truth[tgt[a]] += pop.atom_values[raster.atom_offset + a];
  }
  auto est = std::move(core::PycnophylacticInterpolate(
      raster.nx, raster.ny, src, max_src + 1, tgt, max_tgt + 1, objective)).ValueOrDie();
  // Mass conserved and correlated with the truth.
  EXPECT_NEAR(linalg::Sum(est), linalg::Sum(objective),
              1e-6 * linalg::Sum(objective));
  EXPECT_GT(linalg::PearsonCorrelation(est, truth), 0.9);
}

}  // namespace
}  // namespace geoalign
