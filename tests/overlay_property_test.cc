// Property sweeps over the overlay machinery: measure conservation,
// marginal consistency, and cross-representation agreement on random
// partitions in 1-D, n-D, and 2-D polygon form.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geom/voronoi.h"
#include "partition/box_partition.h"
#include "partition/disaggregation.h"
#include "partition/overlay.h"

namespace geoalign::partition {
namespace {

IntervalPartition RandomIntervals(Rng& rng, double span) {
  std::vector<double> breaks = {0.0};
  size_t n = 2 + rng.UniformInt(uint64_t{12});
  for (size_t i = 0; i < n; ++i) {
    breaks.push_back(breaks.back() + rng.Uniform(0.2, 2.0));
  }
  double scale = span / breaks.back();
  for (double& b : breaks) b *= scale;
  breaks.back() = span;
  return std::move(IntervalPartition::Create(breaks)).ValueOrDie();
}

class BoxOverlayPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BoxOverlayPropertyTest, NdMeasureAndMarginalsConserved) {
  Rng rng(7000 + GetParam());
  size_t dim = 1 + rng.UniformInt(uint64_t{4});  // 1-D through 4-D
  std::vector<IntervalPartition> s_axes;
  std::vector<IntervalPartition> t_axes;
  double volume = 1.0;
  for (size_t d = 0; d < dim; ++d) {
    double span = rng.Uniform(1.0, 20.0);
    volume *= span;
    s_axes.push_back(RandomIntervals(rng, span));
    t_axes.push_back(RandomIntervals(rng, span));
  }
  auto source = std::move(BoxPartition::Create(s_axes)).ValueOrDie();
  auto target = std::move(BoxPartition::Create(t_axes)).ValueOrDie();
  auto overlay = std::move(OverlayBoxes(source, target)).ValueOrDie();

  // Total measure equals the universe volume.
  EXPECT_NEAR(overlay.TotalMeasure(), volume, 1e-9 * volume);

  // DM marginals equal unit measures on both sides.
  sparse::CsrMatrix dm = overlay.MeasureDm();
  linalg::Vector rows = dm.RowSums();
  for (size_t i = 0; i < source.NumUnits(); ++i) {
    EXPECT_NEAR(rows[i], source.Measure(i), 1e-9 * volume) << "dim " << dim;
  }
  linalg::Vector cols = dm.ColSums();
  for (size_t j = 0; j < target.NumUnits(); ++j) {
    EXPECT_NEAR(cols[j], target.Measure(j), 1e-9 * volume);
  }

  // Every cell is genuinely an intersection: its measure is bounded by
  // both unit measures.
  for (const IntersectionCell& c : overlay.cells) {
    EXPECT_LE(c.measure, source.Measure(c.source) + 1e-9);
    EXPECT_LE(c.measure, target.Measure(c.target) + 1e-9);
    EXPECT_GT(c.measure, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BoxOverlayPropertyTest,
                         ::testing::Range(0, 20));

class PolygonOverlayPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PolygonOverlayPropertyTest, VoronoiPairConservesMeasure) {
  Rng rng(7100 + GetParam());
  geom::BBox world(0, 0, 10, 10);
  auto make_layer = [&](size_t n) {
    std::vector<geom::Point> sites;
    for (size_t i = 0; i < n; ++i) {
      sites.push_back({rng.Uniform(0.2, 9.8), rng.Uniform(0.2, 9.8)});
    }
    auto rings = std::move(geom::VoronoiCells(sites, world)).ValueOrDie();
    std::vector<geom::Polygon> polys;
    for (auto& r : rings) {
      if (r.size() >= 3) polys.emplace_back(std::move(r));
    }
    return std::move(PolygonPartition::Create(std::move(polys))).ValueOrDie();
  };
  PolygonPartition source = make_layer(10 + rng.UniformInt(uint64_t{40}));
  PolygonPartition target = make_layer(3 + rng.UniformInt(uint64_t{12}));
  auto overlay = std::move(OverlayPolygons(source, target, 1e-9)).ValueOrDie();
  EXPECT_NEAR(overlay.TotalMeasure(), 100.0, 1e-4);
  sparse::CsrMatrix dm = overlay.MeasureDm();
  linalg::Vector rows = dm.RowSums();
  for (size_t i = 0; i < source.NumUnits(); ++i) {
    EXPECT_NEAR(rows[i], source.Measure(i), 1e-6) << i;
  }
  // Point-location consistency: random points fall in the cell whose
  // (source, target) pair matches their located units.
  for (int q = 0; q < 30; ++q) {
    geom::Point p{rng.Uniform(0.5, 9.5), rng.Uniform(0.5, 9.5)};
    auto si = source.Locate(p);
    auto ti = target.Locate(p);
    ASSERT_TRUE(si.ok() && ti.ok());
    bool found = false;
    for (const IntersectionCell& c : overlay.cells) {
      if (c.source == *si && c.target == *ti) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "located pair missing from overlay";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PolygonOverlayPropertyTest,
                         ::testing::Range(0, 10));

TEST(OverlayCellsProperty, AgreesWithBoxOverlayOnGridWorld) {
  // The same world expressed two ways: a fine 12x12 grid as atoms with
  // coarse labelings, and the equivalent box partitions. The two
  // overlay paths must produce identical measure DMs.
  Rng rng(7200);
  // Source: vertical bands 0-4,4-8,8-12; target: horizontal 0-6,6-12.
  AtomSpace atoms;
  atoms.measures.assign(144, 1.0);
  std::vector<uint32_t> src(144);
  std::vector<uint32_t> tgt(144);
  for (size_t y = 0; y < 12; ++y) {
    for (size_t x = 0; x < 12; ++x) {
      src[y * 12 + x] = static_cast<uint32_t>(x / 4);
      tgt[y * 12 + x] = static_cast<uint32_t>(y / 6);
    }
  }
  auto s_cells = std::move(CellPartition::Create(&atoms, src, 3)).ValueOrDie();
  auto t_cells = std::move(CellPartition::Create(&atoms, tgt, 2)).ValueOrDie();
  auto cell_ov = std::move(OverlayCells(s_cells, t_cells)).ValueOrDie();

  auto sx = std::move(IntervalPartition::Create({0, 4, 8, 12})).ValueOrDie();
  auto sy = std::move(IntervalPartition::Create({0.0, 12.0})).ValueOrDie();
  auto tx = std::move(IntervalPartition::Create({0.0, 12.0})).ValueOrDie();
  auto ty = std::move(IntervalPartition::Create({0, 6, 12})).ValueOrDie();
  auto s_box = std::move(BoxPartition::Create({sx, sy})).ValueOrDie();
  auto t_box = std::move(BoxPartition::Create({tx, ty})).ValueOrDie();
  auto box_ov = std::move(OverlayBoxes(s_box, t_box)).ValueOrDie();

  EXPECT_TRUE(cell_ov.MeasureDm().AllClose(box_ov.MeasureDm(), 1e-9));
}

}  // namespace
}  // namespace geoalign::partition
