// Unit tests for the geometry substrate: primitives, predicates,
// clipping, boolean-op areas, Voronoi, WKT.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geom/bbox.h"
#include "geom/boolean_ops.h"
#include "geom/convex_clip.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/predicates.h"
#include "geom/voronoi.h"
#include "geom/wkt.h"

namespace geoalign::geom {
namespace {

TEST(Point, BasicOps) {
  Point a{1.0, 2.0};
  Point b{4.0, 6.0};
  EXPECT_EQ(a + b, (Point{5.0, 8.0}));
  EXPECT_EQ(b - a, (Point{3.0, 4.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(Dot(a, b), 16.0);
  EXPECT_DOUBLE_EQ(Cross(a, b), 6.0 - 8.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared(a, b), 25.0);
  EXPECT_EQ(Midpoint(a, b), (Point{2.5, 4.0}));
}

TEST(BBox, EmptyAndExpand) {
  BBox box;
  EXPECT_TRUE(box.Empty());
  box.Expand(Point{1.0, 2.0});
  EXPECT_FALSE(box.Empty());
  EXPECT_DOUBLE_EQ(box.Area(), 0.0);
  box.Expand(Point{3.0, 5.0});
  EXPECT_DOUBLE_EQ(box.Area(), 6.0);
  EXPECT_TRUE(box.Contains({2.0, 3.0}));
  EXPECT_FALSE(box.Contains({0.0, 3.0}));
}

TEST(BBox, IntersectionSemantics) {
  BBox a(0, 0, 2, 2);
  BBox b(1, 1, 3, 3);
  EXPECT_TRUE(a.Intersects(b));
  BBox inter = a.Intersection(b);
  EXPECT_DOUBLE_EQ(inter.Area(), 1.0);
  BBox c(5, 5, 6, 6);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Intersection(c).Empty());
  // Touching boxes intersect (closed semantics).
  BBox d(2, 0, 3, 2);
  EXPECT_TRUE(a.Intersects(d));
}

TEST(Ring, ShoelaceArea) {
  Ring ccw = {{0, 0}, {2, 0}, {2, 1}, {0, 1}};
  EXPECT_DOUBLE_EQ(SignedRingArea(ccw), 2.0);
  Ring cw = ccw;
  ReverseRing(cw);
  EXPECT_DOUBLE_EQ(SignedRingArea(cw), -2.0);
  EXPECT_DOUBLE_EQ(RingArea(cw), 2.0);
}

TEST(Ring, CentroidOfSquare) {
  Ring square = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  Point c = RingCentroid(square);
  EXPECT_NEAR(c.x, 1.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
}

TEST(Polygon, NormalizesOrientationAndArea) {
  Ring cw = {{0, 0}, {0, 1}, {1, 1}, {1, 0}};  // clockwise square
  Polygon p(cw);
  EXPECT_GT(SignedRingArea(p.outer()), 0.0);  // normalized to CCW
  EXPECT_DOUBLE_EQ(p.Area(), 1.0);
}

TEST(Polygon, CreateValidates) {
  EXPECT_FALSE(Polygon::Create({{0, 0}, {1, 0}}).ok());
  EXPECT_FALSE(Polygon::Create({{0, 0}, {1, 1}, {2, 2}}).ok());  // zero area
  EXPECT_TRUE(Polygon::Create({{0, 0}, {1, 0}, {0, 1}}).ok());
}

TEST(Polygon, HoleReducesAreaAndContains) {
  Ring outer = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  Ring hole = {{1, 1}, {3, 1}, {3, 3}, {1, 3}};
  auto p = Polygon::Create(outer, {hole});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->Area(), 16.0 - 4.0);
  EXPECT_TRUE(p->Contains({0.5, 0.5}));
  EXPECT_FALSE(p->Contains({2.0, 2.0}));  // inside the hole
  EXPECT_TRUE(p->Contains({2.0, 1.0}));   // on hole boundary
}

TEST(Polygon, ConvexityCheck) {
  EXPECT_TRUE(Polygon({{0, 0}, {2, 0}, {2, 2}, {0, 2}}).IsConvex());
  EXPECT_FALSE(
      Polygon({{0, 0}, {4, 0}, {4, 4}, {2, 1}, {0, 4}}).IsConvex());
}

TEST(Polygon, RegularNgonAreaConvergesToCircle) {
  Polygon hex = Polygon::RegularNgon({0, 0}, 1.0, 6);
  EXPECT_NEAR(hex.Area(), 6.0 * std::sqrt(3.0) / 4.0, 1e-12);
  Polygon many = Polygon::RegularNgon({0, 0}, 1.0, 256);
  EXPECT_NEAR(many.Area(), M_PI, 1e-3);
}

TEST(Polygon, FromBBox) {
  Polygon p = Polygon::FromBBox(BBox(1, 2, 4, 6));
  EXPECT_DOUBLE_EQ(p.Area(), 12.0);
  EXPECT_TRUE(p.Contains({2.0, 3.0}));
}

TEST(Predicates, Orient2d) {
  EXPECT_GT(Orient2d({0, 0}, {1, 0}, {0, 1}), 0.0);
  EXPECT_LT(Orient2d({0, 0}, {1, 0}, {0, -1}), 0.0);
  EXPECT_DOUBLE_EQ(Orient2d({0, 0}, {1, 1}, {2, 2}), 0.0);
}

TEST(Predicates, PointOnSegment) {
  EXPECT_TRUE(PointOnSegment({1, 1}, {0, 0}, {2, 2}));
  EXPECT_FALSE(PointOnSegment({3, 3}, {0, 0}, {2, 2}));
  EXPECT_FALSE(PointOnSegment({1, 1.01}, {0, 0}, {2, 2}));
}

TEST(Predicates, PointInRingBoundaryCounts) {
  Ring square = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_TRUE(PointInRing({1, 1}, square));
  EXPECT_TRUE(PointInRing({0, 1}, square));    // boundary
  EXPECT_TRUE(PointInRing({0, 0}, square));    // vertex
  EXPECT_FALSE(PointInRing({3, 1}, square));
  EXPECT_FALSE(PointStrictlyInRing({0, 1}, square));
  EXPECT_TRUE(PointStrictlyInRing({1, 1}, square));
}

TEST(Predicates, PointInConcaveRing) {
  // A "C" shape.
  Ring c = {{0, 0}, {4, 0}, {4, 1}, {1, 1}, {1, 3}, {4, 3}, {4, 4}, {0, 4}};
  EXPECT_TRUE(PointInRing({0.5, 2.0}, c));
  EXPECT_FALSE(PointInRing({2.5, 2.0}, c));  // in the notch
  EXPECT_TRUE(PointInRing({2.5, 0.5}, c));
}

TEST(Predicates, SegmentIntersectionProper) {
  auto p = SegmentIntersection({0, 0}, {2, 2}, {0, 2}, {2, 0});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(Predicates, SegmentIntersectionDisjointAndTouching) {
  EXPECT_FALSE(SegmentIntersection({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  auto touch = SegmentIntersection({0, 0}, {1, 0}, {1, 0}, {2, 5});
  ASSERT_TRUE(touch.has_value());
  EXPECT_EQ(touch->x, 1.0);
}

TEST(Predicates, SegmentIntersectionCollinearOverlap) {
  auto p = SegmentIntersection({0, 0}, {4, 0}, {2, 0}, {6, 0});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(PointOnSegment(*p, {2, 0}, {4, 0}));
  EXPECT_FALSE(SegmentIntersection({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(Predicates, PointSegmentDistance) {
  EXPECT_DOUBLE_EQ(PointSegmentDistance({0, 1}, {-1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance({3, 0}, {-1, 0}, {1, 0}), 2.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance({5, 5}, {2, 2}, {2, 2}),
                   Distance({5, 5}, {2, 2}));
}

TEST(ConvexClip, HalfPlaneBisector) {
  HalfPlane hp = HalfPlane::Bisector({0, 0}, {2, 0});
  EXPECT_TRUE(hp.Contains({0.5, 7.0}));
  EXPECT_FALSE(hp.Contains({1.5, 7.0}));
  EXPECT_TRUE(hp.Contains({1.0, 0.0}));  // boundary kept
}

TEST(ConvexClip, ClipSquareToHalfPlane) {
  Ring square = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  HalfPlane hp = HalfPlane::Bisector({0, 1}, {2, 1});  // keep x <= 1
  Ring clipped = ClipRingToHalfPlane(square, hp);
  EXPECT_NEAR(RingArea(clipped), 2.0, 1e-12);
}

TEST(ConvexClip, DisjointClipIsEmpty) {
  Ring square = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Ring far = {{5, 5}, {6, 5}, {6, 6}, {5, 6}};
  Ring out = ClipRingToConvex(square, far);
  EXPECT_LT(RingArea(out), 1e-12);
}

TEST(ConvexClip, OverlappingSquares) {
  Ring a = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  Ring b = {{1, 1}, {3, 1}, {3, 3}, {1, 3}};
  EXPECT_NEAR(ConvexIntersectionArea(a, b), 1.0, 1e-12);
  // Containment.
  Ring inner = {{0.5, 0.5}, {1.5, 0.5}, {1.5, 1.5}, {0.5, 1.5}};
  EXPECT_NEAR(ConvexIntersectionArea(a, inner), 1.0, 1e-12);
  EXPECT_NEAR(ConvexIntersectionArea(inner, a), 1.0, 1e-12);
}

TEST(ConvexClip, SharedEdgeOnlyHasZeroArea) {
  Ring a = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Ring b = {{1, 0}, {2, 0}, {2, 1}, {1, 1}};
  EXPECT_NEAR(ConvexIntersectionArea(a, b), 0.0, 1e-12);
}

TEST(BooleanOps, SignedFanCoversPolygon) {
  // Non-convex "arrow": fan triangles must sum (signed) to the area.
  Polygon arrow({{0, 0}, {4, 0}, {4, 4}, {2, 1}, {0, 4}});
  double total = 0.0;
  for (const SignedTriangle& t : SignedFan(arrow)) {
    total += t.sign * RingArea({t.a, t.b, t.c});
  }
  EXPECT_NEAR(total, arrow.Area(), 1e-12);
}

TEST(BooleanOps, ConvexIntersectionMatchesClipper) {
  Polygon a({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  Polygon b({{1, -1}, {3, -1}, {3, 1}, {1, 1}});
  EXPECT_NEAR(IntersectionArea(a, b), 1.0, 1e-12);
  EXPECT_NEAR(UnionArea(a, b), 4.0 + 4.0 - 1.0, 1e-12);
  EXPECT_NEAR(DifferenceArea(a, b), 3.0, 1e-12);
  EXPECT_NEAR(SymmetricDifferenceArea(a, b), 6.0, 1e-12);
}

TEST(BooleanOps, NonConvexIntersection) {
  // L-shape vs square covering its notch.
  Polygon l({{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 3}, {0, 3}});
  Polygon square({{0.5, 0.5}, {2.5, 0.5}, {2.5, 2.5}, {0.5, 2.5}});
  // Overlap: part of the horizontal arm (x in [0.5,2.5], y in [0.5,1])
  // plus part of the vertical arm (x in [0.5,1], y in [1,2.5]).
  double expected = 2.0 * 0.5 + 0.5 * 1.5;
  EXPECT_NEAR(IntersectionArea(l, square), expected, 1e-12);
}

TEST(BooleanOps, HoleExcludedFromIntersection) {
  Ring outer = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  Ring hole = {{1, 1}, {3, 1}, {3, 3}, {1, 3}};
  Polygon donut = std::move(Polygon::Create(outer, {hole})).ValueOrDie();
  Polygon probe({{1.5, 1.5}, {2.5, 1.5}, {2.5, 2.5}, {1.5, 2.5}});
  EXPECT_NEAR(IntersectionArea(donut, probe), 0.0, 1e-12);
  Polygon spanning({{0.0, 1.5}, {4.0, 1.5}, {4.0, 2.5}, {0.0, 2.5}});
  // The band crosses the donut: only the two side strips remain.
  EXPECT_NEAR(IntersectionArea(donut, spanning), 2.0 * 1.0, 1e-12);
}

TEST(BooleanOps, DisjointPolygons) {
  Polygon a({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Polygon b({{5, 5}, {6, 5}, {6, 6}, {5, 6}});
  EXPECT_DOUBLE_EQ(IntersectionArea(a, b), 0.0);
  EXPECT_DOUBLE_EQ(UnionArea(a, b), 2.0);
}

TEST(BooleanOps, SelfIntersectionIsOwnArea) {
  Polygon p({{0, 0}, {4, 0}, {4, 4}, {2, 1}, {0, 4}});
  EXPECT_NEAR(IntersectionArea(p, p), p.Area(), 1e-9);
}

// Property: for random convex polygon pairs, inclusion-exclusion and
// monotonicity hold.
class BooleanOpsRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BooleanOpsRandomTest, InclusionExclusionInvariants) {
  Rng rng(900 + GetParam());
  auto random_poly = [&rng]() {
    Point c{rng.Uniform(-2.0, 2.0), rng.Uniform(-2.0, 2.0)};
    return Polygon::RegularNgon(c, rng.Uniform(0.5, 2.0),
                                3 + static_cast<int>(rng.UniformInt(uint64_t{7})),
                                rng.Uniform(0.0, 1.0));
  };
  Polygon a = random_poly();
  Polygon b = random_poly();
  double inter = IntersectionArea(a, b);
  EXPECT_GE(inter, 0.0);
  EXPECT_LE(inter, std::min(a.Area(), b.Area()) + 1e-9);
  EXPECT_NEAR(IntersectionArea(b, a), inter, 1e-9);
  EXPECT_NEAR(UnionArea(a, b) + inter, a.Area() + b.Area(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BooleanOpsRandomTest,
                         ::testing::Range(0, 30));

TEST(Voronoi, TwoSitesSplitBox) {
  BBox box(0, 0, 2, 1);
  auto cells = VoronoiCells({{0.5, 0.5}, {1.5, 0.5}}, box);
  ASSERT_TRUE(cells.ok());
  ASSERT_EQ(cells->size(), 2u);
  EXPECT_NEAR(RingArea((*cells)[0]), 1.0, 1e-9);
  EXPECT_NEAR(RingArea((*cells)[1]), 1.0, 1e-9);
}

TEST(Voronoi, CellsPartitionBox) {
  Rng rng(41);
  BBox box(0, 0, 10, 10);
  std::vector<Point> sites;
  for (int i = 0; i < 200; ++i) {
    sites.push_back({rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)});
  }
  auto cells = VoronoiCells(sites, box);
  ASSERT_TRUE(cells.ok());
  double total = 0.0;
  for (const Ring& cell : *cells) total += RingArea(cell);
  EXPECT_NEAR(total, 100.0, 1e-6);
  // Each site lies inside (or on the boundary of) its own cell.
  for (size_t i = 0; i < sites.size(); ++i) {
    EXPECT_TRUE(PointInRing(sites[i], (*cells)[i])) << i;
  }
}

TEST(Voronoi, CellContainmentProperty) {
  // Every cell vertex is nearer its own site than any other site.
  Rng rng(43);
  BBox box(0, 0, 5, 5);
  std::vector<Point> sites;
  for (int i = 0; i < 40; ++i) {
    sites.push_back({rng.Uniform(0.0, 5.0), rng.Uniform(0.0, 5.0)});
  }
  auto cells = VoronoiCells(sites, box);
  ASSERT_TRUE(cells.ok());
  for (size_t i = 0; i < sites.size(); ++i) {
    for (const Point& v : (*cells)[i]) {
      double own = DistanceSquared(v, sites[i]);
      for (size_t j = 0; j < sites.size(); ++j) {
        EXPECT_LE(own, DistanceSquared(v, sites[j]) + 1e-6);
      }
    }
  }
}

TEST(Voronoi, DuplicateSitesKeepFirst) {
  BBox box(0, 0, 1, 1);
  auto cells = VoronoiCells({{0.5, 0.5}, {0.5, 0.5}}, box);
  ASSERT_TRUE(cells.ok());
  EXPECT_NEAR(RingArea((*cells)[0]), 1.0, 1e-9);
  EXPECT_TRUE((*cells)[1].empty());
}

TEST(Voronoi, RejectsBadInput) {
  BBox box(0, 0, 1, 1);
  EXPECT_FALSE(VoronoiCells({}, box).ok());
  EXPECT_FALSE(VoronoiCells({{2.0, 2.0}}, box).ok());
  EXPECT_FALSE(VoronoiCells({{0.5, 0.5}}, BBox()).ok());
}

TEST(Wkt, PointRoundTrip) {
  Point p{1.5, -2.25};
  auto parsed = PointFromWkt(ToWkt(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, p);
}

TEST(Wkt, PolygonRoundTrip) {
  Ring outer = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  Ring hole = {{1, 1}, {3, 1}, {3, 3}, {1, 3}};
  Polygon p = std::move(Polygon::Create(outer, {hole})).ValueOrDie();
  auto parsed = PolygonFromWkt(ToWkt(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->Area(), p.Area());
  EXPECT_EQ(parsed->holes().size(), 1u);
}

TEST(Wkt, ParsesExternalFormats) {
  auto p = PolygonFromWkt("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))");
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->Area(), 100.0);
  auto mp = MultiPolygonFromWkt(
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((2 2, 3 2, 3 3, 2 3)))");
  ASSERT_TRUE(mp.ok());
  EXPECT_EQ(mp->size(), 2u);
}

TEST(Wkt, MultiPolygonAcceptsPlainPolygon) {
  auto mp = MultiPolygonFromWkt("POLYGON ((0 0, 1 0, 0 1))");
  ASSERT_TRUE(mp.ok());
  EXPECT_EQ(mp->size(), 1u);
}

TEST(Wkt, RejectsMalformed) {
  EXPECT_FALSE(PointFromWkt("POINT 1 2").ok());
  EXPECT_FALSE(PolygonFromWkt("POLYGON ((0 0, 1 0))").ok());
  EXPECT_FALSE(PolygonFromWkt("LINESTRING (0 0, 1 1)").ok());
  EXPECT_FALSE(PolygonFromWkt("POLYGON ((0 0, 1 0, 0 1)) extra").ok());
}

TEST(Wkt, MultiPolygonRoundTrip) {
  std::vector<Polygon> polys = {Polygon({{0, 0}, {1, 0}, {0, 1}}),
                                Polygon({{5, 5}, {6, 5}, {5, 6}})};
  auto parsed = MultiPolygonFromWkt(ToWkt(polys));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_DOUBLE_EQ((*parsed)[0].Area(), 0.5);
}

}  // namespace
}  // namespace geoalign::geom
