// Unit tests for the geometry substrate: primitives, predicates,
// clipping, boolean-op areas, Voronoi, WKT.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/float_eq.h"
#include "common/random.h"
#include "geom/bbox.h"
#include "geom/boolean_ops.h"
#include "geom/convex_clip.h"
#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/predicates.h"
#include "geom/voronoi.h"
#include "geom/wkt.h"

namespace geoalign::geom {
namespace {

TEST(Point, BasicOps) {
  Point a{1.0, 2.0};
  Point b{4.0, 6.0};
  EXPECT_EQ(a + b, (Point{5.0, 8.0}));
  EXPECT_EQ(b - a, (Point{3.0, 4.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(Dot(a, b), 16.0);
  EXPECT_DOUBLE_EQ(Cross(a, b), 6.0 - 8.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared(a, b), 25.0);
  EXPECT_EQ(Midpoint(a, b), (Point{2.5, 4.0}));
}

TEST(BBox, EmptyAndExpand) {
  BBox box;
  EXPECT_TRUE(box.Empty());
  box.Expand(Point{1.0, 2.0});
  EXPECT_FALSE(box.Empty());
  EXPECT_DOUBLE_EQ(box.Area(), 0.0);
  box.Expand(Point{3.0, 5.0});
  EXPECT_DOUBLE_EQ(box.Area(), 6.0);
  EXPECT_TRUE(box.Contains({2.0, 3.0}));
  EXPECT_FALSE(box.Contains({0.0, 3.0}));
}

TEST(BBox, IntersectionSemantics) {
  BBox a(0, 0, 2, 2);
  BBox b(1, 1, 3, 3);
  EXPECT_TRUE(a.Intersects(b));
  BBox inter = a.Intersection(b);
  EXPECT_DOUBLE_EQ(inter.Area(), 1.0);
  BBox c(5, 5, 6, 6);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Intersection(c).Empty());
  // Touching boxes intersect (closed semantics).
  BBox d(2, 0, 3, 2);
  EXPECT_TRUE(a.Intersects(d));
}

TEST(Ring, ShoelaceArea) {
  Ring ccw = {{0, 0}, {2, 0}, {2, 1}, {0, 1}};
  EXPECT_DOUBLE_EQ(SignedRingArea(ccw), 2.0);
  Ring cw = ccw;
  ReverseRing(cw);
  EXPECT_DOUBLE_EQ(SignedRingArea(cw), -2.0);
  EXPECT_DOUBLE_EQ(RingArea(cw), 2.0);
}

TEST(Ring, CentroidOfSquare) {
  Ring square = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  Point c = RingCentroid(square);
  EXPECT_NEAR(c.x, 1.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
}

TEST(Polygon, NormalizesOrientationAndArea) {
  Ring cw = {{0, 0}, {0, 1}, {1, 1}, {1, 0}};  // clockwise square
  Polygon p(cw);
  EXPECT_GT(SignedRingArea(p.outer()), 0.0);  // normalized to CCW
  EXPECT_DOUBLE_EQ(p.Area(), 1.0);
}

TEST(Polygon, CreateValidates) {
  EXPECT_FALSE(Polygon::Create({{0, 0}, {1, 0}}).ok());
  EXPECT_FALSE(Polygon::Create({{0, 0}, {1, 1}, {2, 2}}).ok());  // zero area
  EXPECT_TRUE(Polygon::Create({{0, 0}, {1, 0}, {0, 1}}).ok());
}

TEST(Polygon, HoleReducesAreaAndContains) {
  Ring outer = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  Ring hole = {{1, 1}, {3, 1}, {3, 3}, {1, 3}};
  auto p = Polygon::Create(outer, {hole});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->Area(), 16.0 - 4.0);
  EXPECT_TRUE(p->Contains({0.5, 0.5}));
  EXPECT_FALSE(p->Contains({2.0, 2.0}));  // inside the hole
  EXPECT_TRUE(p->Contains({2.0, 1.0}));   // on hole boundary
}

TEST(Polygon, ConvexityCheck) {
  EXPECT_TRUE(Polygon({{0, 0}, {2, 0}, {2, 2}, {0, 2}}).IsConvex());
  EXPECT_FALSE(
      Polygon({{0, 0}, {4, 0}, {4, 4}, {2, 1}, {0, 4}}).IsConvex());
}

TEST(Polygon, RegularNgonAreaConvergesToCircle) {
  Polygon hex = Polygon::RegularNgon({0, 0}, 1.0, 6);
  EXPECT_NEAR(hex.Area(), 6.0 * std::sqrt(3.0) / 4.0, 1e-12);
  Polygon many = Polygon::RegularNgon({0, 0}, 1.0, 256);
  EXPECT_NEAR(many.Area(), M_PI, 1e-3);
}

TEST(Polygon, FromBBox) {
  Polygon p = Polygon::FromBBox(BBox(1, 2, 4, 6));
  EXPECT_DOUBLE_EQ(p.Area(), 12.0);
  EXPECT_TRUE(p.Contains({2.0, 3.0}));
}

TEST(Predicates, Orient2d) {
  EXPECT_GT(Orient2d({0, 0}, {1, 0}, {0, 1}), 0.0);
  EXPECT_LT(Orient2d({0, 0}, {1, 0}, {0, -1}), 0.0);
  EXPECT_DOUBLE_EQ(Orient2d({0, 0}, {1, 1}, {2, 2}), 0.0);
}

TEST(Predicates, PointOnSegment) {
  EXPECT_TRUE(PointOnSegment({1, 1}, {0, 0}, {2, 2}));
  EXPECT_FALSE(PointOnSegment({3, 3}, {0, 0}, {2, 2}));
  EXPECT_FALSE(PointOnSegment({1, 1.01}, {0, 0}, {2, 2}));
}

TEST(Predicates, PointInRingBoundaryCounts) {
  Ring square = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_TRUE(PointInRing({1, 1}, square));
  EXPECT_TRUE(PointInRing({0, 1}, square));    // boundary
  EXPECT_TRUE(PointInRing({0, 0}, square));    // vertex
  EXPECT_FALSE(PointInRing({3, 1}, square));
  EXPECT_FALSE(PointStrictlyInRing({0, 1}, square));
  EXPECT_TRUE(PointStrictlyInRing({1, 1}, square));
}

TEST(Predicates, PointInConcaveRing) {
  // A "C" shape.
  Ring c = {{0, 0}, {4, 0}, {4, 1}, {1, 1}, {1, 3}, {4, 3}, {4, 4}, {0, 4}};
  EXPECT_TRUE(PointInRing({0.5, 2.0}, c));
  EXPECT_FALSE(PointInRing({2.5, 2.0}, c));  // in the notch
  EXPECT_TRUE(PointInRing({2.5, 0.5}, c));
}

TEST(Predicates, SegmentIntersectionProper) {
  auto p = SegmentIntersection({0, 0}, {2, 2}, {0, 2}, {2, 0});
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(Predicates, SegmentIntersectionDisjointAndTouching) {
  EXPECT_FALSE(SegmentIntersection({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  auto touch = SegmentIntersection({0, 0}, {1, 0}, {1, 0}, {2, 5});
  ASSERT_TRUE(touch.has_value());
  EXPECT_EQ(touch->x, 1.0);
}

TEST(Predicates, SegmentIntersectionCollinearOverlap) {
  auto p = SegmentIntersection({0, 0}, {4, 0}, {2, 0}, {6, 0});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(PointOnSegment(*p, {2, 0}, {4, 0}));
  EXPECT_FALSE(SegmentIntersection({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(Predicates, PointSegmentDistance) {
  EXPECT_DOUBLE_EQ(PointSegmentDistance({0, 1}, {-1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance({3, 0}, {-1, 0}, {1, 0}), 2.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance({5, 5}, {2, 2}, {2, 2}),
                   Distance({5, 5}, {2, 2}));
}

TEST(ConvexClip, HalfPlaneBisector) {
  HalfPlane hp = HalfPlane::Bisector({0, 0}, {2, 0});
  EXPECT_TRUE(hp.Contains({0.5, 7.0}));
  EXPECT_FALSE(hp.Contains({1.5, 7.0}));
  EXPECT_TRUE(hp.Contains({1.0, 0.0}));  // boundary kept
}

TEST(ConvexClip, ClipSquareToHalfPlane) {
  Ring square = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  HalfPlane hp = HalfPlane::Bisector({0, 1}, {2, 1});  // keep x <= 1
  Ring clipped = ClipRingToHalfPlane(square, hp);
  EXPECT_NEAR(RingArea(clipped), 2.0, 1e-12);
}

TEST(ConvexClip, DisjointClipIsEmpty) {
  Ring square = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Ring far = {{5, 5}, {6, 5}, {6, 6}, {5, 6}};
  Ring out = ClipRingToConvex(square, far);
  EXPECT_LT(RingArea(out), 1e-12);
}

TEST(ConvexClip, OverlappingSquares) {
  Ring a = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  Ring b = {{1, 1}, {3, 1}, {3, 3}, {1, 3}};
  EXPECT_NEAR(ConvexIntersectionArea(a, b), 1.0, 1e-12);
  // Containment.
  Ring inner = {{0.5, 0.5}, {1.5, 0.5}, {1.5, 1.5}, {0.5, 1.5}};
  EXPECT_NEAR(ConvexIntersectionArea(a, inner), 1.0, 1e-12);
  EXPECT_NEAR(ConvexIntersectionArea(inner, a), 1.0, 1e-12);
}

TEST(ConvexClip, SharedEdgeOnlyHasZeroArea) {
  Ring a = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Ring b = {{1, 0}, {2, 0}, {2, 1}, {1, 1}};
  EXPECT_NEAR(ConvexIntersectionArea(a, b), 0.0, 1e-12);
}

TEST(BooleanOps, SignedFanCoversPolygon) {
  // Non-convex "arrow": fan triangles must sum (signed) to the area.
  Polygon arrow({{0, 0}, {4, 0}, {4, 4}, {2, 1}, {0, 4}});
  double total = 0.0;
  for (const SignedTriangle& t : SignedFan(arrow)) {
    total += t.sign * RingArea({t.a, t.b, t.c});
  }
  EXPECT_NEAR(total, arrow.Area(), 1e-12);
}

TEST(BooleanOps, ConvexIntersectionMatchesClipper) {
  Polygon a({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  Polygon b({{1, -1}, {3, -1}, {3, 1}, {1, 1}});
  EXPECT_NEAR(IntersectionArea(a, b), 1.0, 1e-12);
  EXPECT_NEAR(UnionArea(a, b), 4.0 + 4.0 - 1.0, 1e-12);
  EXPECT_NEAR(DifferenceArea(a, b), 3.0, 1e-12);
  EXPECT_NEAR(SymmetricDifferenceArea(a, b), 6.0, 1e-12);
}

TEST(BooleanOps, NonConvexIntersection) {
  // L-shape vs square covering its notch.
  Polygon l({{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 3}, {0, 3}});
  Polygon square({{0.5, 0.5}, {2.5, 0.5}, {2.5, 2.5}, {0.5, 2.5}});
  // Overlap: part of the horizontal arm (x in [0.5,2.5], y in [0.5,1])
  // plus part of the vertical arm (x in [0.5,1], y in [1,2.5]).
  double expected = 2.0 * 0.5 + 0.5 * 1.5;
  EXPECT_NEAR(IntersectionArea(l, square), expected, 1e-12);
}

TEST(BooleanOps, HoleExcludedFromIntersection) {
  Ring outer = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  Ring hole = {{1, 1}, {3, 1}, {3, 3}, {1, 3}};
  Polygon donut = std::move(Polygon::Create(outer, {hole})).ValueOrDie();
  Polygon probe({{1.5, 1.5}, {2.5, 1.5}, {2.5, 2.5}, {1.5, 2.5}});
  EXPECT_NEAR(IntersectionArea(donut, probe), 0.0, 1e-12);
  Polygon spanning({{0.0, 1.5}, {4.0, 1.5}, {4.0, 2.5}, {0.0, 2.5}});
  // The band crosses the donut: only the two side strips remain.
  EXPECT_NEAR(IntersectionArea(donut, spanning), 2.0 * 1.0, 1e-12);
}

TEST(BooleanOps, DisjointPolygons) {
  Polygon a({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Polygon b({{5, 5}, {6, 5}, {6, 6}, {5, 6}});
  EXPECT_DOUBLE_EQ(IntersectionArea(a, b), 0.0);
  EXPECT_DOUBLE_EQ(UnionArea(a, b), 2.0);
}

TEST(BooleanOps, SelfIntersectionIsOwnArea) {
  Polygon p({{0, 0}, {4, 0}, {4, 4}, {2, 1}, {0, 4}});
  EXPECT_NEAR(IntersectionArea(p, p), p.Area(), 1e-9);
}

// Property: for random convex polygon pairs, inclusion-exclusion and
// monotonicity hold.
class BooleanOpsRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BooleanOpsRandomTest, InclusionExclusionInvariants) {
  Rng rng(900 + GetParam());
  auto random_poly = [&rng]() {
    Point c{rng.Uniform(-2.0, 2.0), rng.Uniform(-2.0, 2.0)};
    return Polygon::RegularNgon(c, rng.Uniform(0.5, 2.0),
                                3 + static_cast<int>(rng.UniformInt(uint64_t{7})),
                                rng.Uniform(0.0, 1.0));
  };
  Polygon a = random_poly();
  Polygon b = random_poly();
  double inter = IntersectionArea(a, b);
  EXPECT_GE(inter, 0.0);
  EXPECT_LE(inter, std::min(a.Area(), b.Area()) + 1e-9);
  EXPECT_NEAR(IntersectionArea(b, a), inter, 1e-9);
  EXPECT_NEAR(UnionArea(a, b) + inter, a.Area() + b.Area(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BooleanOpsRandomTest,
                         ::testing::Range(0, 30));

// Naive unpruned O(|A|·|B|) fan reference: the same signed-fan
// decomposition, but every triangle pair is clipped — no bbox pruning,
// every ring freshly allocated. A pair the production path prunes has
// disjoint triangles, whose clip area is exactly 0.0 and is therefore
// never accumulated on either path; the nonzero-term order is
// preserved, so production IntersectionArea must be BIT-identical.
double NaiveIntersectionArea(const Polygon& a, const Polygon& b) {
  std::vector<SignedTriangle> fa = SignedFan(a);
  std::vector<SignedTriangle> fb = SignedFan(b);
  double acc = 0.0;
  for (const SignedTriangle& ta : fa) {
    for (const SignedTriangle& tb : fb) {
      Ring ra = {ta.a, ta.b, ta.c};
      Ring rb = {tb.a, tb.b, tb.c};
      double inter = ConvexIntersectionArea(ra, rb);
      if (inter > 0.0) acc += ta.sign * tb.sign * inter;
    }
  }
  return std::max(acc, 0.0);
}

TEST(BooleanOps, NaiveFanReferenceDifferential) {
  // Edge-case menagerie × random convex probes, all compared bitwise
  // against the unpruned reference.
  Ring outer = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  Ring hole = {{1, 1}, {3, 1}, {3, 3}, {1, 3}};
  std::vector<Polygon> shapes;
  shapes.push_back(std::move(Polygon::Create(outer, {hole})).ValueOrDie());
  shapes.emplace_back(Ring{{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 3}, {0, 3}});
  // Clockwise input ring (constructor normalizes to CCW).
  shapes.emplace_back(Ring{{0, 4}, {4, 4}, {4, 0}, {0, 0}});
  // Collinear mid-edge vertex: its fan triangle is degenerate
  // (Orient2d == 0) and must drop out without disturbing the rest.
  shapes.emplace_back(Ring{{0, 0}, {2, 0}, {4, 0}, {4, 4}, {0, 4}});

  Rng rng(950);
  for (int round = 0; round < 20; ++round) {
    Point c{rng.Uniform(0.0, 4.0), rng.Uniform(0.0, 4.0)};
    Polygon probe = Polygon::RegularNgon(
        c, rng.Uniform(0.3, 2.5),
        3 + static_cast<int>(rng.UniformInt(uint64_t{6})),
        rng.Uniform(0.0, 1.0));
    for (size_t s = 0; s < shapes.size(); ++s) {
      double got = IntersectionArea(shapes[s], probe);
      double want = NaiveIntersectionArea(shapes[s], probe);
      EXPECT_TRUE(ExactlyEqual(got, want))
          << "shape " << s << " round " << round << ": " << got << " vs "
          << want;
    }
    for (size_t s = 0; s < shapes.size(); ++s) {
      for (size_t t = 0; t < shapes.size(); ++t) {
        EXPECT_TRUE(ExactlyEqual(IntersectionArea(shapes[s], shapes[t]),
                                 NaiveIntersectionArea(shapes[s], shapes[t])))
            << s << " x " << t;
      }
    }
  }
}

TEST(BooleanOps, SharedEdgeAndTouchingCornerAreZero) {
  Polygon left({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Polygon right({{1, 0}, {2, 0}, {2, 1}, {1, 1}});
  EXPECT_DOUBLE_EQ(IntersectionArea(left, right), 0.0);
  EXPECT_TRUE(ExactlyEqual(IntersectionArea(left, right),
                           NaiveIntersectionArea(left, right)));
  Polygon corner({{1, 1}, {2, 1}, {2, 2}, {1, 2}});
  EXPECT_DOUBLE_EQ(IntersectionArea(left, corner), 0.0);
}

TEST(BooleanOps, SliverOverlapKeepsTinyAreaExactly) {
  // 1e-9-wide overlap strip: far below any realistic min_area, but the
  // computed measure must still match the reference bitwise and the
  // analytic value tightly (this is what the overlay's min_area prune
  // then drops — the geometry layer itself never rounds it away).
  constexpr double kEps = 1e-9;
  Polygon a({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Polygon b({{1.0 - kEps, 0}, {2, 0}, {2, 1}, {1.0 - kEps, 1}});
  double got = IntersectionArea(a, b);
  EXPECT_TRUE(ExactlyEqual(got, NaiveIntersectionArea(a, b)));
  EXPECT_NEAR(got, kEps, 1e-15);
  EXPECT_GT(got, 0.0);
}

TEST(BooleanOps, DegenerateFanTrianglesDropOut) {
  // All-collinear "polygon" (zero area): every fan triangle is
  // degenerate, the fan is empty, and any intersection is 0.
  Polygon flat({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  EXPECT_TRUE(SignedFan(flat).empty());
  Polygon square({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_DOUBLE_EQ(IntersectionArea(flat, square), 0.0);
}

TEST(BooleanOps, PreparedPathBitIdenticalToIntersectionArea) {
  // The overlay engine's cached-fan entry point, fed the same fans +
  // boxes IntersectionArea derives internally, through one reused
  // scratch — must be bit-identical pair after pair.
  Rng rng(960);
  FanScratch scratch;
  scratch.Reserve(8);
  Ring outer = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  Ring hole = {{1, 1}, {3, 1}, {3, 3}, {1, 3}};
  Polygon donut = std::move(Polygon::Create(outer, {hole})).ValueOrDie();
  for (int round = 0; round < 25; ++round) {
    Point c{rng.Uniform(0.0, 4.0), rng.Uniform(0.0, 4.0)};
    Polygon probe = Polygon::RegularNgon(
        c, rng.Uniform(0.3, 2.0),
        3 + static_cast<int>(rng.UniformInt(uint64_t{6})),
        rng.Uniform(0.0, 1.0));
    std::vector<SignedTriangle> fa = SignedFan(donut);
    std::vector<SignedTriangle> fb = SignedFan(probe);
    std::vector<BBox> ba = FanBBoxes(fa);
    std::vector<BBox> bb = FanBBoxes(fb);
    double got = donut.Bounds().Intersects(probe.Bounds())
                     ? IntersectionAreaPrepared(fa.data(), ba.data(),
                                                fa.size(), fb.data(),
                                                bb.data(), fb.size(),
                                                &scratch)
                     : 0.0;
    EXPECT_TRUE(ExactlyEqual(got, IntersectionArea(donut, probe)))
        << "round " << round;
  }
}

TEST(ConvexClip, ScratchVariantBitIdenticalAndReusable) {
  Rng rng(970);
  ClipScratch scratch;
  scratch.Reserve(16);
  for (int round = 0; round < 40; ++round) {
    Polygon a = Polygon::RegularNgon(
        {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)},
        rng.Uniform(0.4, 1.5),
        3 + static_cast<int>(rng.UniformInt(uint64_t{8})),
        rng.Uniform(0.0, 1.0));
    Polygon b = Polygon::RegularNgon(
        {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)},
        rng.Uniform(0.4, 1.5),
        3 + static_cast<int>(rng.UniformInt(uint64_t{8})),
        rng.Uniform(0.0, 1.0));
    double got = ConvexIntersectionAreaWith(a.outer(), b.outer(), &scratch);
    EXPECT_TRUE(ExactlyEqual(got, ConvexIntersectionArea(a.outer(),
                                                         b.outer())))
        << "round " << round;
  }
  // Reserve(16) covers every ring above (<= 11 + 11 vertices is over,
  // but growth is tracked, not forbidden, for the generic entry);
  // a second sweep through the now-warm scratch must not grow at all.
  uint64_t events = scratch.alloc_events;
  Polygon a = Polygon::RegularNgon({0, 0}, 1.0, 8);
  Polygon b = Polygon::RegularNgon({0.4, 0.2}, 1.0, 9);
  ConvexIntersectionAreaWith(a.outer(), b.outer(), &scratch);
  EXPECT_EQ(scratch.alloc_events, events);
}

TEST(Predicates, SegmentIntersectsBBoxCases) {
  BBox box(1, 1, 3, 3);
  // Fully inside.
  EXPECT_TRUE(SegmentIntersectsBBox({1.5, 1.5}, {2.5, 2.5}, box));
  // Crossing through.
  EXPECT_TRUE(SegmentIntersectsBBox({0, 2}, {4, 2}, box));
  // Diagonal clipping a corner region.
  EXPECT_TRUE(SegmentIntersectsBBox({0, 2.5}, {2.5, 0}, box));
  // Touching an edge exactly (closed-box semantics).
  EXPECT_TRUE(SegmentIntersectsBBox({0, 1}, {4, 1}, box));
  // Touching a corner exactly.
  EXPECT_TRUE(SegmentIntersectsBBox({0, 0}, {1, 1}, box));
  // Disjoint, axis-parallel outside the slab.
  EXPECT_FALSE(SegmentIntersectsBBox({0, 0.5}, {4, 0.5}, box));
  // Disjoint diagonal that misses the corner.
  EXPECT_FALSE(SegmentIntersectsBBox({0, 1.8}, {1.8, 0}, box));
  // Degenerate point-segment inside / outside.
  EXPECT_TRUE(SegmentIntersectsBBox({2, 2}, {2, 2}, box));
  EXPECT_FALSE(SegmentIntersectsBBox({0, 0}, {0, 0}, box));
}

TEST(Predicates, PolygonContainsBBoxCases) {
  Ring outer = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  Ring hole = {{4, 4}, {6, 4}, {6, 6}, {4, 6}};
  Polygon donut = std::move(Polygon::Create(outer, {hole})).ValueOrDie();
  // Comfortably inside, away from the hole.
  EXPECT_TRUE(PolygonContainsBBox(donut, BBox(1, 1, 3, 3)));
  // Crossing the outer boundary.
  EXPECT_FALSE(PolygonContainsBBox(donut, BBox(-1, 1, 2, 3)));
  // Fully outside.
  EXPECT_FALSE(PolygonContainsBBox(donut, BBox(11, 11, 12, 12)));
  // Overlapping the hole (conservatively rejected).
  EXPECT_FALSE(PolygonContainsBBox(donut, BBox(3, 3, 5, 5)));
  // Inside the hole: corners fail the outer-ring test only when the
  // hole is consulted — the hole-bbox check rejects it.
  EXPECT_FALSE(PolygonContainsBBox(donut, BBox(4.5, 4.5, 5.5, 5.5)));
  // Concave polygon: corners inside but an edge cuts through the box.
  Polygon lshape({{0, 0}, {6, 0}, {6, 2}, {2, 2}, {2, 6}, {0, 6}});
  EXPECT_FALSE(PolygonContainsBBox(lshape, BBox(1, 1, 3, 3)));
  EXPECT_TRUE(PolygonContainsBBox(lshape, BBox(0.5, 0.5, 1.5, 1.5)));
}

TEST(Voronoi, TwoSitesSplitBox) {
  BBox box(0, 0, 2, 1);
  auto cells = VoronoiCells({{0.5, 0.5}, {1.5, 0.5}}, box);
  ASSERT_TRUE(cells.ok());
  ASSERT_EQ(cells->size(), 2u);
  EXPECT_NEAR(RingArea((*cells)[0]), 1.0, 1e-9);
  EXPECT_NEAR(RingArea((*cells)[1]), 1.0, 1e-9);
}

TEST(Voronoi, CellsPartitionBox) {
  Rng rng(41);
  BBox box(0, 0, 10, 10);
  std::vector<Point> sites;
  for (int i = 0; i < 200; ++i) {
    sites.push_back({rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)});
  }
  auto cells = VoronoiCells(sites, box);
  ASSERT_TRUE(cells.ok());
  double total = 0.0;
  for (const Ring& cell : *cells) total += RingArea(cell);
  EXPECT_NEAR(total, 100.0, 1e-6);
  // Each site lies inside (or on the boundary of) its own cell.
  for (size_t i = 0; i < sites.size(); ++i) {
    EXPECT_TRUE(PointInRing(sites[i], (*cells)[i])) << i;
  }
}

TEST(Voronoi, CellContainmentProperty) {
  // Every cell vertex is nearer its own site than any other site.
  Rng rng(43);
  BBox box(0, 0, 5, 5);
  std::vector<Point> sites;
  for (int i = 0; i < 40; ++i) {
    sites.push_back({rng.Uniform(0.0, 5.0), rng.Uniform(0.0, 5.0)});
  }
  auto cells = VoronoiCells(sites, box);
  ASSERT_TRUE(cells.ok());
  for (size_t i = 0; i < sites.size(); ++i) {
    for (const Point& v : (*cells)[i]) {
      double own = DistanceSquared(v, sites[i]);
      for (size_t j = 0; j < sites.size(); ++j) {
        EXPECT_LE(own, DistanceSquared(v, sites[j]) + 1e-6);
      }
    }
  }
}

TEST(Voronoi, DuplicateSitesKeepFirst) {
  BBox box(0, 0, 1, 1);
  auto cells = VoronoiCells({{0.5, 0.5}, {0.5, 0.5}}, box);
  ASSERT_TRUE(cells.ok());
  EXPECT_NEAR(RingArea((*cells)[0]), 1.0, 1e-9);
  EXPECT_TRUE((*cells)[1].empty());
}

TEST(Voronoi, RejectsBadInput) {
  BBox box(0, 0, 1, 1);
  EXPECT_FALSE(VoronoiCells({}, box).ok());
  EXPECT_FALSE(VoronoiCells({{2.0, 2.0}}, box).ok());
  EXPECT_FALSE(VoronoiCells({{0.5, 0.5}}, BBox()).ok());
}

TEST(Wkt, PointRoundTrip) {
  Point p{1.5, -2.25};
  auto parsed = PointFromWkt(ToWkt(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, p);
}

TEST(Wkt, PolygonRoundTrip) {
  Ring outer = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  Ring hole = {{1, 1}, {3, 1}, {3, 3}, {1, 3}};
  Polygon p = std::move(Polygon::Create(outer, {hole})).ValueOrDie();
  auto parsed = PolygonFromWkt(ToWkt(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->Area(), p.Area());
  EXPECT_EQ(parsed->holes().size(), 1u);
}

TEST(Wkt, ParsesExternalFormats) {
  auto p = PolygonFromWkt("POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))");
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->Area(), 100.0);
  auto mp = MultiPolygonFromWkt(
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((2 2, 3 2, 3 3, 2 3)))");
  ASSERT_TRUE(mp.ok());
  EXPECT_EQ(mp->size(), 2u);
}

TEST(Wkt, MultiPolygonAcceptsPlainPolygon) {
  auto mp = MultiPolygonFromWkt("POLYGON ((0 0, 1 0, 0 1))");
  ASSERT_TRUE(mp.ok());
  EXPECT_EQ(mp->size(), 1u);
}

TEST(Wkt, RejectsMalformed) {
  EXPECT_FALSE(PointFromWkt("POINT 1 2").ok());
  EXPECT_FALSE(PolygonFromWkt("POLYGON ((0 0, 1 0))").ok());
  EXPECT_FALSE(PolygonFromWkt("LINESTRING (0 0, 1 1)").ok());
  EXPECT_FALSE(PolygonFromWkt("POLYGON ((0 0, 1 0, 0 1)) extra").ok());
}

TEST(Wkt, MultiPolygonRoundTrip) {
  std::vector<Polygon> polys = {Polygon({{0, 0}, {1, 0}, {0, 1}}),
                                Polygon({{5, 5}, {6, 5}, {5, 6}})};
  auto parsed = MultiPolygonFromWkt(ToWkt(polys));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_DOUBLE_EQ((*parsed)[0].Area(), 0.5);
}

}  // namespace
}  // namespace geoalign::geom
