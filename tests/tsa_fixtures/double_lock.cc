// TSA negative fixture: acquiring a mutex that is already held MUST
// fail to compile under -Wthread-safety -Werror ("acquiring mutex
// 'mu_' that is already held"). Checked by tests/tsa_test.sh.
#include "common/thread_annotations.h"

namespace geoalign::tsa_fixture {

class Widget {
 public:
  void Touch() {
    common::MutexLock lock(mu_);
    mu_.Lock();  // BUG: second acquisition of a held, non-recursive mutex
    ++gen_;
    mu_.Unlock();
  }

 private:
  common::Mutex mu_;
  int gen_ GEOALIGN_GUARDED_BY(mu_) = 0;
};

}  // namespace geoalign::tsa_fixture
