// TSA negative fixture: releasing a mutex that is not held MUST fail
// to compile under -Wthread-safety -Werror ("releasing mutex 'mu_'
// that was not held"). Checked by tests/tsa_test.sh.
#include "common/thread_annotations.h"

namespace geoalign::tsa_fixture {

class Widget {
 public:
  void Broken() {
    mu_.Unlock();  // BUG: nothing ever locked mu_ on this path
  }

 private:
  common::Mutex mu_;
};

}  // namespace geoalign::tsa_fixture
