// TSA negative fixture: holding mutex A while writing state guarded
// by mutex B MUST fail to compile under -Wthread-safety -Werror
// ("writing variable 'b_state_' requires holding mutex 'mu_b_'").
// Guards against the classic refactor bug where a member migrates to
// a new lock but one call site keeps the old one. Checked by
// tests/tsa_test.sh.
#include "common/thread_annotations.h"

namespace geoalign::tsa_fixture {

class Sharded {
 public:
  void Bump() {
    common::MutexLock lock(mu_a_);  // BUG: wrong shard's lock
    ++b_state_;
  }

 private:
  common::Mutex mu_a_;
  common::Mutex mu_b_;
  int a_state_ GEOALIGN_GUARDED_BY(mu_a_) = 0;
  int b_state_ GEOALIGN_GUARDED_BY(mu_b_) = 0;
};

}  // namespace geoalign::tsa_fixture
