// TSA negative fixture: calling a GEOALIGN_REQUIRES(mu_) helper
// without holding mu_ MUST fail to compile under -Wthread-safety
// -Werror ("calling function ... requires holding mutex 'mu_'").
// Checked by tests/tsa_test.sh.
#include <cstddef>

#include "common/thread_annotations.h"

namespace geoalign::tsa_fixture {

class Cache {
 public:
  // BUG: EvictLocked's contract says the caller holds mu_; this entry
  // point never acquires it.
  void Shrink() { EvictLocked(); }

 private:
  void EvictLocked() GEOALIGN_REQUIRES(mu_) { --size_; }

  common::Mutex mu_;
  size_t size_ GEOALIGN_GUARDED_BY(mu_) = 0;
};

}  // namespace geoalign::tsa_fixture
