// TSA negative fixture: calling a GEOALIGN_EXCLUDES(mu_) function
// while holding mu_ MUST fail to compile under -Wthread-safety
// -Werror ("cannot call function ... while mutex 'mu_' is held") —
// the self-deadlock a non-recursive mutex turns into a hang at
// runtime. Checked by tests/tsa_test.sh.
#include "common/thread_annotations.h"

namespace geoalign::tsa_fixture {

class Registry {
 public:
  void Reload() GEOALIGN_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    ++version_;
  }

  void ReloadTwice() {
    common::MutexLock lock(mu_);
    Reload();  // BUG: re-entering a self-locking entry point
  }

 private:
  common::Mutex mu_;
  int version_ GEOALIGN_GUARDED_BY(mu_) = 0;
};

}  // namespace geoalign::tsa_fixture
