// TSA positive fixture: exercises the whole annotated wrapper API
// correctly and MUST compile warning-free under -Wthread-safety
// -Wthread-safety-beta -Werror. A false positive here means the
// wrappers themselves (capability/scoped-capability/REQUIRES/
// ACQUIRE/RELEASE attributes) regressed. Checked by
// tests/tsa_test.sh.
#include <cstddef>
#include <deque>

#include "common/thread_annotations.h"

namespace geoalign::tsa_fixture {

class Queue {
 public:
  // RAII acquisition + guarded predicate loop (the thread_pool idiom).
  int Pop() {
    common::MutexLock lock(mu_);
    while (!stopping_ && items_.empty()) cv_.Wait(mu_);
    if (items_.empty()) return -1;
    int v = items_.front();
    items_.pop_front();
    return v;
  }

  void Push(int v) {
    {
      common::MutexLock lock(mu_);
      items_.push_back(v);
    }
    cv_.NotifyOne();
  }

  void Stop() GEOALIGN_EXCLUDES(mu_) {
    {
      common::MutexLock lock(mu_);
      stopping_ = true;
    }
    cv_.NotifyAll();
  }

  // Manual acquire/release entry points, annotated.
  void Lock() GEOALIGN_ACQUIRE(mu_) { mu_.Lock(); }
  void Unlock() GEOALIGN_RELEASE(mu_) { mu_.Unlock(); }
  size_t SizeLocked() const GEOALIGN_REQUIRES(mu_) {
    return items_.size();
  }

  // TryLock with conditional release.
  bool TryDrain() {
    if (!mu_.TryLock()) return false;
    items_.clear();
    mu_.Unlock();
    return true;
  }

  // AssertHeld: the caller acquired mu_ through Lock() above — a
  // channel the analysis follows here, but the assertion form must
  // also compile.
  size_t SizeAsserted() const {
    mu_.AssertHeld();
    return items_.size();
  }

 private:
  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::deque<int> items_ GEOALIGN_GUARDED_BY(mu_);
  bool stopping_ GEOALIGN_GUARDED_BY(mu_) = false;
};

size_t UseManualSection(Queue& q) {
  q.Lock();
  size_t n = q.SizeLocked();
  q.Unlock();
  return n;
}

}  // namespace geoalign::tsa_fixture
