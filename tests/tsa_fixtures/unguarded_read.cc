// TSA negative fixture: reading a GEOALIGN_GUARDED_BY member without
// holding its mutex MUST fail to compile under -Wthread-safety
// -Werror ("requires holding mutex 'mu_'"). Checked by
// tests/tsa_test.sh; if this fixture ever compiles, the annotation
// layer has silently lost the guarded-read check.
#include <cstddef>

#include "common/thread_annotations.h"

namespace geoalign::tsa_fixture {

class Queue {
 public:
  // BUG: unguarded read of depth_ — no MutexLock, no REQUIRES.
  size_t depth() const { return depth_; }

 private:
  mutable common::Mutex mu_;
  size_t depth_ GEOALIGN_GUARDED_BY(mu_) = 0;
};

size_t Probe(const Queue& q) { return q.depth(); }

}  // namespace geoalign::tsa_fixture
