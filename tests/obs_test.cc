// Observability layer tests (src/obs/): exact counter totals under
// concurrent hammering (run under TSan in CI), histogram bucketing,
// span nesting/ordering, Chrome trace-event schema validation, and —
// the load-bearing one — bit-identical crosswalk results with
// telemetry enabled vs disabled (telemetry observes, never alters).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/geoalign.h"
#include "io/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "sparse/coo_builder.h"

namespace geoalign {
namespace {

// Saves/restores the global telemetry switch so tests compose in any
// order, and leaves the registry/trace state clean behind itself.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_enabled_ = obs::Enabled();
    obs::SetEnabled(true);
    obs::MetricsRegistry::Global().ResetAll();
    obs::TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    obs::MetricsRegistry::Global().ResetAll();
    obs::TraceRecorder::Global().Clear();
    obs::SetEnabled(saved_enabled_);
  }

 private:
  bool saved_enabled_ = false;
};

TEST_F(ObsTest, CounterConcurrentHammeringIsExact) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
      counter.Add(42);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(counter.Value(), kThreads * (kPerThread + 42));
}

TEST_F(ObsTest, CounterIsNoOpWhileDisabled) {
  obs::Counter counter;
  counter.Add(7);
  obs::SetEnabled(false);
  counter.Add(1000);
  obs::SetEnabled(true);
  counter.Add(3);
  EXPECT_EQ(counter.Value(), 10u);
}

TEST_F(ObsTest, GaugeTracksAddSubSet) {
  obs::Gauge gauge;
  gauge.Add(5);
  gauge.Sub(2);
  EXPECT_EQ(gauge.Value(), 3);
  gauge.Set(-7);
  EXPECT_EQ(gauge.Value(), -7);
  obs::SetEnabled(false);
  gauge.Set(100);
  obs::SetEnabled(true);
  EXPECT_EQ(gauge.Value(), -7);
}

TEST_F(ObsTest, HistogramBucketsByUpperBound) {
  obs::Histogram hist({1.0, 2.0, 5.0});
  hist.Record(0.5);   // bucket 0 (<= 1)
  hist.Record(1.0);   // bucket 0 (bound is inclusive)
  hist.Record(1.5);   // bucket 1
  hist.Record(5.0);   // bucket 2
  hist.Record(99.0);  // overflow bucket
  EXPECT_EQ(hist.Count(), 5u);
  EXPECT_EQ(hist.BucketCount(0), 2u);
  EXPECT_EQ(hist.BucketCount(1), 1u);
  EXPECT_EQ(hist.BucketCount(2), 1u);
  EXPECT_EQ(hist.BucketCount(3), 1u);
}

TEST_F(ObsTest, HistogramConcurrentCountsAreExact) {
  obs::Histogram hist(obs::Histogram::DefaultBounds());
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<double>((t * 37 + i) % 1000));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(hist.Count(), kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i <= obs::Histogram::DefaultBounds().size(); ++i) {
    bucket_total += hist.BucketCount(i);
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST_F(ObsTest, RegistryReturnsStableReferencesAndSnapshotsParse) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter& a = reg.GetCounter("obs_test.counter");
  obs::Counter& b = reg.GetCounter("obs_test.counter");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  reg.GetGauge("obs_test.gauge").Set(11);
  reg.GetHistogram("obs_test.hist").Record(123.0);

  obs::MetricsSnapshot snapshot = reg.Snapshot();
  std::string json = snapshot.ToJson();
  auto parsed = io::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  ASSERT_TRUE(parsed->Has("counters"));
  ASSERT_TRUE(parsed->Has("gauges"));
  ASSERT_TRUE(parsed->Has("histograms"));
  const io::JsonValue* counters = parsed->Get("counters").ValueOrDie();
  ASSERT_TRUE(counters->Has("obs_test.counter"));
  EXPECT_EQ(
      counters->Get("obs_test.counter").ValueOrDie()->AsNumber().ValueOrDie(),
      3.0);
  const io::JsonValue* hists = parsed->Get("histograms").ValueOrDie();
  ASSERT_TRUE(hists->Has("obs_test.hist"));
  const io::JsonValue* h = hists->Get("obs_test.hist").ValueOrDie();
  EXPECT_TRUE(h->Has("count"));
  EXPECT_TRUE(h->Has("bounds"));
  EXPECT_TRUE(h->Has("bucket_counts"));

  // The text rendering mentions every metric name.
  std::string text = snapshot.ToText();
  EXPECT_NE(text.find("obs_test.counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test.hist_p99"), std::string::npos);
}

TEST_F(ObsTest, SpansNestAndOrder) {
  {
    GEOALIGN_TRACE_SPAN("test.outer");
    {
      GEOALIGN_TRACE_SPAN("test.inner_a");
    }
    {
      GEOALIGN_TRACE_SPAN("test.inner_b");
    }
  }
  std::vector<obs::SpanEvent> spans = obs::TraceRecorder::Global().Collect();
  ASSERT_EQ(spans.size(), 3u);
  // Collect sorts by start tick: outer opened first.
  EXPECT_STREQ(spans[0].name, "test.outer");
  EXPECT_STREQ(spans[1].name, "test.inner_a");
  EXPECT_STREQ(spans[2].name, "test.inner_b");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 2u);
  EXPECT_EQ(spans[2].depth, 2u);
  // Containment: both inners start and end inside the outer interval,
  // and inner_a completes before inner_b starts.
  EXPECT_GE(spans[1].start_ticks, spans[0].start_ticks);
  EXPECT_LE(spans[2].end_ticks, spans[0].end_ticks);
  EXPECT_LE(spans[1].end_ticks, spans[2].start_ticks);
  // All on the one test thread.
  EXPECT_EQ(spans[1].thread_index, spans[0].thread_index);
  EXPECT_EQ(spans[2].thread_index, spans[0].thread_index);
}

TEST_F(ObsTest, SpansAreInertWhileDisabled) {
  obs::SetEnabled(false);
  {
    GEOALIGN_TRACE_SPAN("test.should_not_record");
  }
  obs::SetEnabled(true);
  EXPECT_TRUE(obs::TraceRecorder::Global().Collect().empty());
}

TEST_F(ObsTest, ChromeTraceExportMatchesSchema) {
  {
    GEOALIGN_TRACE_SPAN("test.schema_outer");
    GEOALIGN_TRACE_SPAN("test.schema_inner");
  }
  std::string trace = obs::TraceRecorder::Global().ExportChromeTrace();
  auto parsed = io::ParseJson(trace);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << trace;
  const io::JsonValue* events = parsed->Get("traceEvents").ValueOrDie();
  ASSERT_EQ(events->size(), 2u);
  for (size_t i = 0; i < events->size(); ++i) {
    const io::JsonValue& e = (*events)[i];
    EXPECT_EQ((*e.Get("ph").ValueOrDie()).AsString().ValueOrDie(), "X");
    EXPECT_TRUE(e.Has("name"));
    EXPECT_TRUE(e.Has("ts"));
    EXPECT_TRUE(e.Has("dur"));
    EXPECT_TRUE(e.Has("pid"));
    EXPECT_TRUE(e.Has("tid"));
    EXPECT_GE((*e.Get("ts").ValueOrDie()).AsNumber().ValueOrDie(), 0.0);
    EXPECT_GE((*e.Get("dur").ValueOrDie()).AsNumber().ValueOrDie(), 0.0);
    const io::JsonValue* args = e.Get("args").ValueOrDie();
    EXPECT_GE((*args->Get("depth").ValueOrDie()).AsNumber().ValueOrDie(),
              1.0);
  }
  // Empty export is still valid JSON with an (empty) traceEvents array.
  obs::TraceRecorder::Global().Clear();
  auto empty = io::ParseJson(obs::TraceRecorder::Global().ExportChromeTrace());
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->Get("traceEvents").ValueOrDie()->size(), 0u);
}

TEST_F(ObsTest, TraceRingDropsOldestBeyondCapacity) {
  for (size_t i = 0; i < obs::TraceBuffer::kCapacity + 10; ++i) {
    GEOALIGN_TRACE_SPAN("test.flood");
  }
  std::vector<obs::SpanEvent> spans = obs::TraceRecorder::Global().Collect();
  // This thread's buffer holds exactly kCapacity; other tests cleared
  // theirs in SetUp, so the flood dominates.
  EXPECT_GE(spans.size(), obs::TraceBuffer::kCapacity);
  EXPECT_GE(obs::TraceRecorder::Global().TotalDropped(), 10u);
}

// A small two-reference crosswalk input with a zero row (source s2 has
// no support in either reference), exercising Eq. 14/15/17 end to end.
core::CrosswalkInput MakeSmallInput() {
  core::CrosswalkInput input;
  input.objective_source = {30.0, 12.0, 0.0, 7.0};
  sparse::CooBuilder dm_a(4, 3);
  dm_a.Add(0, 0, 2.0);
  dm_a.Add(0, 1, 1.0);
  dm_a.Add(1, 1, 3.0);
  dm_a.Add(3, 2, 5.0);
  sparse::CooBuilder dm_b(4, 3);
  dm_b.Add(0, 0, 1.0);
  dm_b.Add(1, 2, 2.0);
  dm_b.Add(3, 0, 1.0);
  dm_b.Add(3, 1, 1.0);
  core::ReferenceAttribute ref_a;
  ref_a.name = "alpha";
  ref_a.source_aggregates = {3.0, 3.0, 0.0, 5.0};
  ref_a.disaggregation = dm_a.Build();
  core::ReferenceAttribute ref_b;
  ref_b.name = "beta";
  ref_b.source_aggregates = {1.0, 2.0, 0.0, 2.0};
  ref_b.disaggregation = dm_b.Build();
  input.references.push_back(std::move(ref_a));
  input.references.push_back(std::move(ref_b));
  return input;
}

TEST_F(ObsTest, CrosswalkBitsIdenticalWithTelemetryOnAndOff) {
  core::CrosswalkInput input = MakeSmallInput();
  for (core::WeightSolver solver :
       {core::WeightSolver::kSimplex, core::WeightSolver::kNnlsNormalized,
        core::WeightSolver::kClampedLs, core::WeightSolver::kUniform}) {
    SCOPED_TRACE(static_cast<int>(solver));
    core::GeoAlignOptions options;
    options.solver = solver;
    core::GeoAlign method(options);

    obs::SetEnabled(true);
    auto with = method.Crosswalk(input);
    ASSERT_TRUE(with.ok()) << with.status().ToString();

    obs::SetEnabled(false);
    auto without = method.Crosswalk(input);
    ASSERT_TRUE(without.ok()) << without.status().ToString();
    obs::SetEnabled(true);

    ASSERT_EQ(with->target_estimates, without->target_estimates);
    ASSERT_EQ(with->weights, without->weights);
    ASSERT_EQ(with->zero_rows, without->zero_rows);
    ASSERT_EQ(with->estimated_dm.row_ptr(), without->estimated_dm.row_ptr());
    ASSERT_EQ(with->estimated_dm.col_idx(), without->estimated_dm.col_idx());
    ASSERT_EQ(with->estimated_dm.values(), without->estimated_dm.values());
  }
}

TEST_F(ObsTest, CrosswalkEmitsServingPathSpansAndCounters) {
  core::CrosswalkInput input = MakeSmallInput();
  core::GeoAlign method;
  auto result = method.Crosswalk(input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  EXPECT_GE(reg.GetCounter("compile.count").Value(), 1u);
  EXPECT_GE(reg.GetCounter("execute.count").Value(), 1u);
  EXPECT_GE(reg.GetCounter("weight_solve.simplex").Value(), 1u);
  EXPECT_GE(reg.GetHistogram("execute.latency_us").Count(), 1u);

  std::vector<obs::SpanEvent> spans = obs::TraceRecorder::Global().Collect();
  auto has_span = [&spans](const char* name) {
    for (const obs::SpanEvent& s : spans) {
      if (std::string(s.name) == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_span("compile"));
  EXPECT_TRUE(has_span("execute"));
  EXPECT_TRUE(has_span("execute.weight_solve"));
  EXPECT_TRUE(has_span("execute.eq14_disaggregate"));
  EXPECT_TRUE(has_span("execute.eq17_reaggregate"));
}

TEST_F(ObsTest, SummaryTableMentionsRecordedMetrics) {
  obs::MetricsRegistry::Global().GetCounter("obs_test.summary").Add(5);
  std::string table = obs::SummaryTable();
  EXPECT_NE(table.find("obs_test.summary"), std::string::npos);
}

TEST_F(ObsTest, StopwatchAndPhaseTimerShareSteadyClockPolicy) {
  obs::Stopwatch watch;
  int64_t t0 = obs::NowTicks();
  int64_t t1 = obs::NowTicks();
  EXPECT_GE(t1, t0);
  EXPECT_GE(watch.ElapsedMicros(), 0.0);
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  watch.Restart();
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace geoalign
