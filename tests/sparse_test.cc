// Unit tests for the CSR sparse matrix substrate.

#include <gtest/gtest.h>

#include "common/random.h"
#include "sparse/coo_builder.h"
#include "sparse/csr_matrix.h"
#include "sparse/sparse_ops.h"

namespace geoalign::sparse {
namespace {

using linalg::Matrix;
using linalg::Vector;

CsrMatrix Small() {
  // [1 0 2]
  // [0 0 0]
  // [3 4 0]
  CooBuilder b(3, 3);
  b.Add(0, 0, 1.0);
  b.Add(0, 2, 2.0);
  b.Add(2, 0, 3.0);
  b.Add(2, 1, 4.0);
  return b.Build();
}

TEST(CooBuilder, BuildsSortedCsr) {
  CsrMatrix m = Small();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 4.0);
}

TEST(CooBuilder, SumsDuplicates) {
  CooBuilder b(2, 2);
  b.Add(0, 1, 1.0);
  b.Add(0, 1, 2.5);
  b.Add(1, 0, -1.0);
  b.Add(1, 0, 1.0);  // cancels to zero -> dropped
  CsrMatrix m = b.Build();
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 3.5);
}

TEST(CooBuilder, ReusableAfterBuild) {
  CooBuilder b(1, 1);
  b.Add(0, 0, 1.0);
  CsrMatrix first = b.Build();
  EXPECT_EQ(first.nnz(), 1u);
  b.Add(0, 0, 7.0);
  CsrMatrix second = b.Build();
  EXPECT_DOUBLE_EQ(second.At(0, 0), 7.0);
}

TEST(CsrMatrix, FromCsrArraysValidates) {
  // Wrong row_ptr length.
  EXPECT_FALSE(CsrMatrix::FromCsrArrays(2, 2, {0, 1}, {0}, {1.0}).ok());
  // Column out of range.
  EXPECT_FALSE(CsrMatrix::FromCsrArrays(1, 2, {0, 1}, {2}, {1.0}).ok());
  // Non-increasing columns.
  EXPECT_FALSE(
      CsrMatrix::FromCsrArrays(1, 3, {0, 2}, {1, 1}, {1.0, 2.0}).ok());
  // Valid.
  EXPECT_TRUE(
      CsrMatrix::FromCsrArrays(1, 3, {0, 2}, {0, 2}, {1.0, 2.0}).ok());
}

TEST(CsrMatrix, DenseRoundTrip) {
  Matrix d = Matrix::FromRows({{0.0, 5.0}, {7.0, 0.0}});
  CsrMatrix m = CsrMatrix::FromDense(d);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_TRUE(m.ToDense().AllClose(d, 0.0));
}

TEST(CsrMatrix, RowAndColSums) {
  CsrMatrix m = Small();
  EXPECT_EQ(m.RowSums(), (Vector{3.0, 0.0, 7.0}));
  EXPECT_EQ(m.ColSums(), (Vector{4.0, 4.0, 2.0}));
  EXPECT_DOUBLE_EQ(m.Total(), 10.0);
}

TEST(CsrMatrix, MatVecAndTranspose) {
  CsrMatrix m = Small();
  EXPECT_EQ(m.MatVec({1.0, 1.0, 1.0}), (Vector{3.0, 0.0, 7.0}));
  EXPECT_EQ(m.MatTVec({1.0, 1.0, 1.0}), (Vector{4.0, 4.0, 2.0}));
  CsrMatrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(t.At(1, 2), 4.0);
  EXPECT_TRUE(t.Transposed().AllClose(m, 0.0));
}

TEST(CsrMatrix, ScaleRowsAndPrune) {
  CsrMatrix m = Small();
  m.ScaleRows({2.0, 5.0, 0.0});
  EXPECT_DOUBLE_EQ(m.At(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 0.0);
  m.Prune(0.0);
  EXPECT_EQ(m.nnz(), 2u);
}

TEST(CsrMatrix, RowView) {
  CsrMatrix m = Small();
  CsrMatrix::RowView row = m.Row(2);
  ASSERT_EQ(row.size, 2u);
  EXPECT_EQ(row.cols[0], 0u);
  EXPECT_EQ(row.cols[1], 1u);
  EXPECT_DOUBLE_EQ(row.values[0], 3.0);
  CsrMatrix::RowView empty = m.Row(1);
  EXPECT_EQ(empty.size, 0u);
}

TEST(CsrMatrix, AllCloseComparesStructurallyDifferentMatrices) {
  CooBuilder b1(2, 2);
  b1.Add(0, 0, 1.0);
  CsrMatrix a = b1.Build();
  CooBuilder b2(2, 2);
  b2.Add(0, 0, 1.0);
  b2.Add(1, 1, 1e-13);
  CsrMatrix b = b2.Build();
  EXPECT_TRUE(a.AllClose(b, 1e-9));
  EXPECT_FALSE(a.AllClose(b, 1e-15));
  CsrMatrix c(2, 3);
  EXPECT_FALSE(a.AllClose(c, 1.0));
}

TEST(SparseOps, AddMatchesDense) {
  CsrMatrix a = Small();
  CooBuilder b(3, 3);
  b.Add(0, 0, -1.0);
  b.Add(1, 1, 2.0);
  CsrMatrix c = b.Build();
  auto sum = Add(a, c);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum->At(0, 0), 0.0);  // cancelled and dropped
  EXPECT_DOUBLE_EQ(sum->At(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(sum->At(2, 1), 4.0);
}

TEST(SparseOps, WeightedSumMatchesDenseReference) {
  Rng rng(3);
  size_t rows = 20;
  size_t cols = 15;
  std::vector<CsrMatrix> mats;
  std::vector<Matrix> dense;
  for (int k = 0; k < 4; ++k) {
    CooBuilder b(rows, cols);
    Matrix d(rows, cols);
    for (int e = 0; e < 60; ++e) {
      size_t r = rng.UniformInt(uint64_t{rows});
      size_t c = rng.UniformInt(uint64_t{cols});
      double v = rng.Gaussian(0.0, 1.0);
      b.Add(r, c, v);
      d(r, c) += v;
    }
    mats.push_back(b.Build());
    dense.push_back(std::move(d));
  }
  Vector w = {0.1, 0.0, -2.0, 1.5};
  std::vector<const CsrMatrix*> ptrs;
  for (const CsrMatrix& m : mats) ptrs.push_back(&m);
  auto sum = WeightedSum(ptrs, w);
  ASSERT_TRUE(sum.ok());
  Matrix expected(rows, cols);
  for (size_t k = 0; k < 4; ++k) {
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        expected(r, c) += w[k] * dense[k](r, c);
      }
    }
  }
  EXPECT_TRUE(sum->ToDense().AllClose(expected, 1e-12));
}

TEST(SparseOps, WeightedSumValidatesShapes) {
  CsrMatrix a(2, 2);
  CsrMatrix b(2, 3);
  EXPECT_FALSE(WeightedSum({&a, &b}, {1.0, 1.0}).ok());
  EXPECT_FALSE(WeightedSum({&a}, {1.0, 2.0}).ok());
  EXPECT_FALSE(WeightedSum({}, {}).ok());
}

TEST(SparseOps, DivideRowsOrZero) {
  CsrMatrix m = Small();
  std::vector<size_t> zero_rows;
  DivideRowsOrZero(m, {2.0, 0.0, 4.0}, 0.0, &zero_rows);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 1.0);
  ASSERT_EQ(zero_rows.size(), 1u);
  EXPECT_EQ(zero_rows[0], 1u);
}

TEST(SparseOps, DivideRowsZeroToleranceZeroesTinyDenominators) {
  CsrMatrix m = Small();
  std::vector<size_t> zero_rows;
  DivideRowsOrZero(m, {1e-15, 1.0, 1.0}, 1e-12, &zero_rows);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.At(0, 2), 0.0);
  // Only row 0's denominator is below tolerance (rows 1 and 2 have
  // denominator 1.0; row 1 simply stores no entries).
  ASSERT_EQ(zero_rows.size(), 1u);
  EXPECT_EQ(zero_rows[0], 0u);
}

// Property test: transpose-transpose identity and sum invariants over
// random matrices.
class CsrRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CsrRandomTest, StructuralInvariants) {
  Rng rng(500 + GetParam());
  size_t rows = 1 + rng.UniformInt(uint64_t{30});
  size_t cols = 1 + rng.UniformInt(uint64_t{30});
  CooBuilder b(rows, cols);
  size_t entries = rng.UniformInt(uint64_t{rows * cols});
  for (size_t e = 0; e < entries; ++e) {
    b.Add(rng.UniformInt(uint64_t{rows}), rng.UniformInt(uint64_t{cols}),
          rng.Uniform(0.1, 2.0));
  }
  CsrMatrix m = b.Build();
  // Row/col index invariants.
  for (size_t r = 0; r < rows; ++r) {
    CsrMatrix::RowView row = m.Row(r);
    for (size_t k = 1; k < row.size; ++k) {
      EXPECT_LT(row.cols[k - 1], row.cols[k]);
    }
  }
  // Total preserved under transpose; row sums of T = col sums of m.
  CsrMatrix t = m.Transposed();
  EXPECT_NEAR(t.Total(), m.Total(), 1e-9);
  EXPECT_TRUE(linalg::AllClose(t.RowSums(), m.ColSums(), 1e-12));
  EXPECT_TRUE(t.Transposed().AllClose(m, 0.0));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CsrRandomTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace geoalign::sparse
