// End-to-end smoke test: a tiny hand-built universe where GeoAlign's
// behaviour is fully predictable.

#include <gtest/gtest.h>

#include "core/dasymetric.h"
#include "core/geoalign.h"
#include "synth/universe.h"

namespace geoalign {
namespace {

// Two zips, two counties. Reference "population" known everywhere.
core::CrosswalkInput TinyInput() {
  core::CrosswalkInput input;
  input.objective_source = {100.0, 50.0};
  core::ReferenceAttribute pop;
  pop.name = "population";
  pop.source_aggregates = {25000.0, 10000.0};
  linalg::Matrix dm(2, 2);
  dm(0, 0) = 10000.0;
  dm(0, 1) = 15000.0;
  dm(1, 0) = 0.0;
  dm(1, 1) = 10000.0;
  pop.disaggregation = sparse::CsrMatrix::FromDense(dm);
  input.references.push_back(std::move(pop));
  return input;
}

TEST(Smoke, SingleReferenceMatchesIntroExample) {
  // The paper's intro example: 100 crimes in a zip whose population
  // splits 10k/15k across two counties -> 40/60.
  core::CrosswalkInput input = TinyInput();
  ASSERT_TRUE(input.Validate().ok());
  core::GeoAlign geoalign;
  auto result = geoalign.Crosswalk(input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->target_estimates[0], 40.0, 1e-9);
  EXPECT_NEAR(result->target_estimates[1], 60.0 + 50.0, 1e-9);
  ASSERT_EQ(result->weights.size(), 1u);
  EXPECT_NEAR(result->weights[0], 1.0, 1e-12);
}

TEST(Smoke, TinyUniverseBuildsAndCrosswalks) {
  synth::UniverseOptions opts;
  opts.scale = 0.02;
  opts.seed = 7;
  auto uni = synth::BuildUniverse(synth::UniverseId::kNewYork, opts);
  ASSERT_TRUE(uni.ok()) << uni.status().ToString();
  EXPECT_GT(uni->NumZips(), 10u);
  EXPECT_GE(uni->NumCounties(), 2u);
  auto input = uni->MakeLeaveOneOutInput(0);
  ASSERT_TRUE(input.ok()) << input.status().ToString();
  ASSERT_TRUE(input->Validate().ok());
  core::GeoAlign geoalign;
  auto result = geoalign.Crosswalk(*input);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->target_estimates.size(), uni->NumCounties());
}

}  // namespace
}  // namespace geoalign
