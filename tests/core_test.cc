// Unit tests for the core interpolators: GeoAlign (Algorithm 1) and
// the baselines, including the paper's key invariants — volume
// preservation (Eq. 16), simplex weights (Eq. 15), dimension
// independence, and exact recovery when a perfect reference exists.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/areal_weighting.h"
#include "core/dasymetric.h"
#include "core/geoalign.h"
#include "core/pipeline.h"
#include "core/pycnophylactic.h"
#include "partition/interval_partition.h"
#include "partition/overlay.h"
#include "sparse/coo_builder.h"
#include "sparse/sparse_ops.h"

namespace geoalign::core {
namespace {

using linalg::Vector;
using sparse::CooBuilder;
using sparse::CsrMatrix;

// Builds a reference from a dense DM given as nested rows; the source
// aggregates are the row sums (always consistent).
ReferenceAttribute MakeRef(std::string name,
                           const std::vector<std::vector<double>>& dm_rows) {
  ReferenceAttribute ref;
  ref.name = std::move(name);
  linalg::Matrix dm = linalg::Matrix::FromRows(dm_rows);
  ref.disaggregation = CsrMatrix::FromDense(dm);
  ref.source_aggregates = ref.disaggregation.RowSums();
  return ref;
}

// A random consistent input: `num_refs` references over an
// `ns` x `nt` unit pair, plus an objective derived from a hidden
// convex combination of the references (so GeoAlign can recover it).
struct SyntheticCase {
  CrosswalkInput input;
  Vector true_target;
  Vector true_beta;
};

SyntheticCase RandomRecoverableCase(Rng& rng, size_t ns, size_t nt,
                                    size_t num_refs) {
  SyntheticCase out;
  std::vector<CsrMatrix> dms;
  for (size_t k = 0; k < num_refs; ++k) {
    CooBuilder b(ns, nt);
    for (size_t i = 0; i < ns; ++i) {
      // Each source unit intersects 1-3 target units.
      size_t spread = 1 + rng.UniformInt(uint64_t{3});
      for (size_t s = 0; s < spread; ++s) {
        b.Add(i, rng.UniformInt(uint64_t{nt}), rng.Uniform(0.5, 20.0));
      }
    }
    // Anchor every reference's maximum at source unit 0 (think: all
    // attributes peak in the same metro). Max-normalization then maps
    // the hidden convex combination onto the simplex exactly, making
    // it recoverable; without a shared peak the normalized mixture's
    // maximum falls below 1 and no simplex point reproduces it.
    b.Add(0, 0, 120.0);
    CsrMatrix dm = b.Build();
    ReferenceAttribute ref;
    ref.name = "ref" + std::to_string(k);
    ref.source_aggregates = dm.RowSums();
    ref.disaggregation = dm;
    out.input.references.push_back(ref);
    dms.push_back(std::move(dm));
  }
  // Hidden simplex weights over the normalized references.
  Vector beta(num_refs);
  double total = 0.0;
  for (double& v : beta) {
    v = rng.Exponential(1.0);
    total += v;
  }
  for (double& v : beta) v /= total;
  out.true_beta = beta;
  // Objective DM = sum_k beta_k * DM'_k (normalized by each ref's max);
  // objective aggregates are its row sums, truth its column sums.
  std::vector<const CsrMatrix*> ptrs;
  Vector eff(num_refs);
  for (size_t k = 0; k < num_refs; ++k) {
    ptrs.push_back(&dms[k]);
    eff[k] = beta[k] / linalg::Max(out.input.references[k].source_aggregates);
  }
  CsrMatrix objective_dm = std::move(sparse::WeightedSum(ptrs, eff)).ValueOrDie();
  out.input.objective_source = objective_dm.RowSums();
  out.true_target = objective_dm.ColSums();
  return out;
}

TEST(CrosswalkInput, ValidateCatchesShapeErrors) {
  CrosswalkInput input;
  input.objective_source = {1.0, 2.0};
  EXPECT_FALSE(input.Validate().ok());  // no references
  input.references.push_back(MakeRef("r", {{1.0, 0.0}, {0.0, 1.0}}));
  EXPECT_TRUE(input.Validate().ok());
  input.references[0].source_aggregates = {1.0};  // wrong length
  EXPECT_FALSE(input.Validate().ok());
}

TEST(CrosswalkInput, ValidateCatchesInconsistentDm) {
  CrosswalkInput input;
  input.objective_source = {1.0, 2.0};
  ReferenceAttribute ref = MakeRef("r", {{1.0, 0.0}, {0.0, 1.0}});
  ref.source_aggregates = {5.0, 1.0};  // row 0 sums to 1, not 5
  input.references.push_back(ref);
  EXPECT_FALSE(input.Validate().ok());
}

TEST(CrosswalkInput, ValidateCatchesNegatives) {
  CrosswalkInput input;
  input.objective_source = {1.0, -2.0};
  input.references.push_back(MakeRef("r", {{1.0, 0.0}, {0.0, 1.0}}));
  EXPECT_FALSE(input.Validate().ok());
}

TEST(CrosswalkInput, FindAndSubset) {
  CrosswalkInput input;
  input.objective_source = {1.0, 1.0};
  input.references.push_back(MakeRef("a", {{1.0, 0.0}, {0.0, 1.0}}));
  input.references.push_back(MakeRef("b", {{2.0, 0.0}, {0.0, 2.0}}));
  EXPECT_EQ(std::move(input.FindReference("b")).ValueOrDie(), 1u);
  EXPECT_FALSE(input.FindReference("c").ok());
  auto sub = std::move(input.WithReferenceSubset({1})).ValueOrDie();
  EXPECT_EQ(sub.references.size(), 1u);
  EXPECT_EQ(sub.references[0].name, "b");
  EXPECT_FALSE(input.WithReferenceSubset({}).ok());
  EXPECT_FALSE(input.WithReferenceSubset({5}).ok());
}

TEST(GeoAlign, IntroExampleSingleReference) {
  // Paper intro: 100 crimes, zip population splits 10k/15k -> 40/60.
  CrosswalkInput input;
  input.objective_source = {100.0};
  input.references.push_back(MakeRef("population", {{10000.0, 15000.0}}));
  GeoAlign geoalign;
  auto res = std::move(geoalign.Crosswalk(input)).ValueOrDie();
  EXPECT_NEAR(res.target_estimates[0], 40.0, 1e-9);
  EXPECT_NEAR(res.target_estimates[1], 60.0, 1e-9);
}

TEST(GeoAlign, WeightsLieOnSimplex) {
  Rng rng(101);
  SyntheticCase c = RandomRecoverableCase(rng, 30, 8, 4);
  GeoAlign geoalign;
  auto res = std::move(geoalign.Crosswalk(c.input)).ValueOrDie();
  EXPECT_NEAR(linalg::Sum(res.weights), 1.0, 1e-8);
  for (double b : res.weights) EXPECT_GE(b, -1e-10);
}

TEST(GeoAlign, VolumePreservation) {
  // Eq. 16: row sums of the estimated DM reproduce the source
  // aggregates exactly (consistent references, full support).
  Rng rng(103);
  for (int trial = 0; trial < 10; ++trial) {
    SyntheticCase c = RandomRecoverableCase(rng, 40, 10, 3);
    GeoAlign geoalign;
    auto res = std::move(geoalign.Crosswalk(c.input)).ValueOrDie();
    EXPECT_TRUE(res.zero_rows.empty());
    EXPECT_LT(res.VolumePreservationError(c.input.objective_source), 1e-8);
    // Mass conservation at target level.
    EXPECT_NEAR(linalg::Sum(res.target_estimates),
                linalg::Sum(c.input.objective_source), 1e-6);
  }
}

TEST(GeoAlign, RecoversHiddenConvexCombination) {
  // When the objective's DM is exactly a convex combination of the
  // normalized reference DMs, GeoAlign reproduces the target truth.
  Rng rng(105);
  for (int trial = 0; trial < 10; ++trial) {
    SyntheticCase c = RandomRecoverableCase(rng, 50, 12, 4);
    GeoAlign geoalign;
    auto res = std::move(geoalign.Crosswalk(c.input)).ValueOrDie();
    for (size_t j = 0; j < c.true_target.size(); ++j) {
      EXPECT_NEAR(res.target_estimates[j], c.true_target[j],
                  1e-6 * std::max(1.0, c.true_target[j]))
          << "trial " << trial << " target " << j;
    }
  }
}

TEST(GeoAlign, PerfectReferenceGetsAllWeight) {
  // references: one exactly proportional to the objective, one wildly
  // different. The proportional one should dominate.
  CrosswalkInput input;
  input.references.push_back(
      MakeRef("good", {{4.0, 0.0}, {1.0, 3.0}, {0.0, 2.0}}));
  input.references.push_back(
      MakeRef("bad", {{0.0, 9.0}, {8.0, 0.0}, {7.0, 7.0}}));
  // objective = 2.5 * good's source vector.
  input.objective_source = input.references[0].source_aggregates;
  linalg::Scale(input.objective_source, 2.5);
  GeoAlign geoalign;
  auto res = std::move(geoalign.Crosswalk(input)).ValueOrDie();
  EXPECT_GT(res.weights[0], 0.999);
  // And the estimate equals 2.5 * good's target distribution.
  Vector expected = input.references[0].disaggregation.ColSums();
  linalg::Scale(expected, 2.5);
  EXPECT_TRUE(linalg::AllClose(res.target_estimates, expected, 1e-6));
}

TEST(GeoAlign, ZeroRowsReportedAndZeroed) {
  CrosswalkInput input;
  input.objective_source = {10.0, 20.0};
  // Reference has no mass in source unit 1.
  input.references.push_back(MakeRef("r", {{3.0, 1.0}, {0.0, 0.0}}));
  GeoAlign geoalign;
  auto res = std::move(geoalign.Crosswalk(input)).ValueOrDie();
  ASSERT_EQ(res.zero_rows.size(), 1u);
  EXPECT_EQ(res.zero_rows[0], 1u);
  // Unit 1's mass is dropped (paper's Eq. 14 "otherwise 0").
  EXPECT_NEAR(linalg::Sum(res.target_estimates), 10.0, 1e-9);
}

TEST(GeoAlign, FallbackDmCarriesUnsupportedRows) {
  CrosswalkInput input;
  input.objective_source = {10.0, 20.0};
  input.references.push_back(MakeRef("r", {{3.0, 1.0}, {0.0, 0.0}}));
  // Area fallback: unit 1 splits 50/50.
  CooBuilder area(2, 2);
  area.Add(0, 0, 1.0);
  area.Add(1, 0, 2.0);
  area.Add(1, 1, 2.0);
  CsrMatrix area_dm = area.Build();
  GeoAlignOptions opts;
  opts.zero_row_fallback = ZeroRowFallback::kFallbackDm;
  opts.fallback_dm = &area_dm;
  GeoAlign geoalign(opts);
  auto res = std::move(geoalign.Crosswalk(input)).ValueOrDie();
  EXPECT_NEAR(linalg::Sum(res.target_estimates), 30.0, 1e-9);
  // Row 0: 10 * (3/4, 1/4); row 1 falls back to the 50/50 area split
  // of its 20 units of mass.
  EXPECT_NEAR(res.target_estimates[0], 7.5 + 10.0, 1e-9);
  EXPECT_NEAR(res.target_estimates[1], 2.5 + 10.0, 1e-9);
  // Volume preserving everywhere thanks to the fallback.
  EXPECT_LT(res.VolumePreservationError(input.objective_source), 1e-9);
}

TEST(GeoAlign, FallbackRequiresDm) {
  GeoAlignOptions opts;
  opts.zero_row_fallback = ZeroRowFallback::kFallbackDm;
  GeoAlign geoalign(opts);
  CrosswalkInput input;
  input.objective_source = {1.0};
  input.references.push_back(MakeRef("r", {{1.0}}));
  EXPECT_FALSE(geoalign.Crosswalk(input).ok());
}

TEST(GeoAlign, AllSolverVariantsProduceValidWeights) {
  Rng rng(107);
  SyntheticCase c = RandomRecoverableCase(rng, 25, 6, 4);
  for (WeightSolver solver :
       {WeightSolver::kSimplex, WeightSolver::kNnlsNormalized,
        WeightSolver::kClampedLs, WeightSolver::kUniform}) {
    GeoAlignOptions opts;
    opts.solver = solver;
    GeoAlign geoalign(opts);
    auto res = std::move(geoalign.Crosswalk(c.input)).ValueOrDie();
    EXPECT_NEAR(linalg::Sum(res.weights), 1.0, 1e-8);
    for (double b : res.weights) EXPECT_GE(b, -1e-10);
    EXPECT_LT(res.VolumePreservationError(c.input.objective_source), 1e-7);
  }
}

TEST(GeoAlign, RawScaleModeStillVolumePreserving) {
  Rng rng(109);
  SyntheticCase c = RandomRecoverableCase(rng, 20, 5, 3);
  GeoAlignOptions opts;
  opts.scale_mode = ScaleMode::kRaw;
  GeoAlign geoalign(opts);
  auto res = std::move(geoalign.Crosswalk(c.input)).ValueOrDie();
  // Raw mode mixes scales but row sums still telescope to a^s_o.
  EXPECT_LT(res.VolumePreservationError(c.input.objective_source), 1e-7);
}

TEST(GeoAlign, DenominatorModeControlsNoiseBehaviour) {
  // With inconsistent (noisy) reference aggregates, the default
  // DM-row-sum denominator keeps volume preservation exact, while the
  // literal Eq. 14 denominator scales each row by the aggregate error.
  Rng rng(211);
  SyntheticCase c = RandomRecoverableCase(rng, 30, 8, 3);
  // Corrupt one reference's aggregates by +50% (DM left unchanged).
  CrosswalkInput noisy = c.input;
  linalg::Scale(noisy.references[0].source_aggregates, 1.5);

  GeoAlignOptions robust;
  robust.denominator = DenominatorMode::kFromDmRowSums;
  auto res_robust = std::move(GeoAlign(robust).Crosswalk(noisy)).ValueOrDie();
  EXPECT_LT(res_robust.VolumePreservationError(noisy.objective_source), 1e-8);

  GeoAlignOptions literal;
  literal.denominator = DenominatorMode::kFromAggregates;
  auto res_lit = std::move(GeoAlign(literal).Crosswalk(noisy)).ValueOrDie();
  // Any row where reference 0 carries weight is off by up to 1/1.5.
  EXPECT_GT(res_lit.VolumePreservationError(noisy.objective_source), 1e-3);
}

TEST(GeoAlign, TimingPhasesPopulated) {
  Rng rng(111);
  SyntheticCase c = RandomRecoverableCase(rng, 20, 5, 3);
  GeoAlign geoalign;
  auto res = std::move(geoalign.Crosswalk(c.input)).ValueOrDie();
  EXPECT_GT(res.timing.TotalSeconds(), 0.0);
  EXPECT_EQ(res.timing.Phases().size(), 3u);
}

TEST(GeoAlign, LearnWeightsMatchesCrosswalkWeights) {
  Rng rng(113);
  SyntheticCase c = RandomRecoverableCase(rng, 30, 8, 3);
  GeoAlign geoalign;
  auto beta = std::move(geoalign.LearnWeights(c.input)).ValueOrDie();
  auto res = std::move(geoalign.Crosswalk(c.input)).ValueOrDie();
  EXPECT_TRUE(linalg::AllClose(beta, res.weights, 1e-12));
}

TEST(GeoAlign, RejectsEmptyReferences) {
  GeoAlign geoalign;
  CrosswalkInput input;
  input.objective_source = {1.0};
  EXPECT_FALSE(geoalign.Crosswalk(input).ok());
}

TEST(Dasymetric, SplitsProportionally) {
  CrosswalkInput input;
  input.objective_source = {100.0, 60.0};
  input.references.push_back(
      MakeRef("population", {{10000.0, 15000.0}, {0.0, 5000.0}}));
  Dasymetric dasy(size_t{0});
  auto res = std::move(dasy.Crosswalk(input)).ValueOrDie();
  EXPECT_NEAR(res.target_estimates[0], 40.0, 1e-9);
  EXPECT_NEAR(res.target_estimates[1], 60.0 + 60.0, 1e-9);
  EXPECT_LT(res.VolumePreservationError(input.objective_source), 1e-9);
}

TEST(Dasymetric, ByNameResolvesPerCall) {
  CrosswalkInput input;
  input.objective_source = {10.0};
  input.references.push_back(MakeRef("a", {{1.0, 1.0}}));
  input.references.push_back(MakeRef("b", {{3.0, 1.0}}));
  Dasymetric dasy("b");
  EXPECT_EQ(dasy.name(), "dasymetric(b)");
  auto res = std::move(dasy.Crosswalk(input)).ValueOrDie();
  EXPECT_NEAR(res.target_estimates[0], 7.5, 1e-9);
  Dasymetric missing("zzz");
  EXPECT_FALSE(missing.Crosswalk(input).ok());
}

TEST(Dasymetric, IndexOutOfRange) {
  CrosswalkInput input;
  input.objective_source = {1.0};
  input.references.push_back(MakeRef("a", {{1.0}}));
  Dasymetric dasy(size_t{3});
  EXPECT_FALSE(dasy.Crosswalk(input).ok());
}

TEST(Dasymetric, ZeroReferenceRowsDropMass) {
  CrosswalkInput input;
  input.objective_source = {10.0, 20.0};
  input.references.push_back(MakeRef("r", {{1.0, 1.0}, {0.0, 0.0}}));
  Dasymetric dasy(size_t{0});
  auto res = std::move(dasy.Crosswalk(input)).ValueOrDie();
  EXPECT_EQ(res.zero_rows.size(), 1u);
  EXPECT_NEAR(linalg::Sum(res.target_estimates), 10.0, 1e-9);
}

TEST(ArealWeighting, HomogeneousSplitByArea) {
  CooBuilder area(2, 2);
  area.Add(0, 0, 7.0);
  area.Add(0, 1, 3.0);
  area.Add(1, 1, 5.0);
  ArealWeighting areal(area.Build());
  CrosswalkInput input;
  input.objective_source = {100.0, 50.0};
  // References are irrelevant to areal weighting.
  auto res = std::move(areal.Crosswalk(input)).ValueOrDie();
  EXPECT_NEAR(res.target_estimates[0], 70.0, 1e-9);
  EXPECT_NEAR(res.target_estimates[1], 30.0 + 50.0, 1e-9);
  EXPECT_LT(res.VolumePreservationError(input.objective_source), 1e-9);
}

TEST(ArealWeighting, ShapeMismatchRejected) {
  ArealWeighting areal(CsrMatrix(3, 2));
  CrosswalkInput input;
  input.objective_source = {1.0, 2.0};
  EXPECT_FALSE(areal.Crosswalk(input).ok());
}

TEST(Pycnophylactic, PreservesSourceVolumes) {
  // 4x2 grid, two source units (left/right), two target units
  // (top/bottom).
  size_t nx = 4;
  size_t ny = 2;
  std::vector<uint32_t> src = {0, 0, 1, 1, 0, 0, 1, 1};
  std::vector<uint32_t> tgt = {0, 0, 0, 0, 1, 1, 1, 1};
  Vector objective = {12.0, 4.0};
  auto target = std::move(PycnophylacticInterpolate(nx, ny, src, 2, tgt, 2,
                                                    objective)).ValueOrDie();
  EXPECT_NEAR(target[0] + target[1], 16.0, 1e-9);
  EXPECT_GE(target[0], 0.0);
  EXPECT_GE(target[1], 0.0);
}

TEST(Pycnophylactic, UniformFieldSplitsEvenly) {
  size_t nx = 4;
  size_t ny = 4;
  std::vector<uint32_t> src(16, 0);
  std::vector<uint32_t> tgt(16);
  for (size_t a = 0; a < 16; ++a) tgt[a] = a < 8 ? 0 : 1;
  auto target = std::move(PycnophylacticInterpolate(nx, ny, src, 1, tgt, 2,
                                                    {32.0})).ValueOrDie();
  EXPECT_NEAR(target[0], 16.0, 1e-9);
  EXPECT_NEAR(target[1], 16.0, 1e-9);
}

TEST(Pycnophylactic, ValidatesInput) {
  std::vector<uint32_t> labels = {0, 0, 0, 0};
  EXPECT_FALSE(
      PycnophylacticInterpolate(0, 0, {}, 1, {}, 1, {1.0}).ok());
  EXPECT_FALSE(
      PycnophylacticInterpolate(2, 2, {0, 0}, 1, labels, 1, {1.0}).ok());
  EXPECT_FALSE(
      PycnophylacticInterpolate(2, 2, labels, 1, labels, 1, {1.0, 2.0}).ok());
  std::vector<uint32_t> bad = {0, 0, 0, 9};
  EXPECT_FALSE(
      PycnophylacticInterpolate(2, 2, bad, 1, labels, 1, {1.0}).ok());
  PycnophylacticOptions opts;
  opts.relaxation = 0.0;
  EXPECT_FALSE(PycnophylacticInterpolate(2, 2, labels, 1, labels, 1, {1.0},
                                         opts)
                   .ok());
}

TEST(Pipeline, EndToEndJoin) {
  std::vector<std::string> zips = {"10001", "10002"};
  std::vector<std::string> counties = {"New York", "Kings"};
  std::vector<ReferenceAttribute> refs = {
      MakeRef("population", {{100.0, 300.0}, {50.0, 50.0}})};
  auto pipeline = std::move(CrosswalkPipeline::Create(zips, counties, refs)).ValueOrDie();
  auto rows = std::move(pipeline.Join({{"10001", 40.0}, {"10002", 10.0}},
                                      {{"Kings", 7.0}, {"New York", 3.0}})).ValueOrDie();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].target_unit, "New York");
  EXPECT_NEAR(rows[0].objective_estimate, 10.0 + 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(rows[0].target_value, 3.0);
  EXPECT_NEAR(rows[1].objective_estimate, 30.0 + 5.0, 1e-9);
}

TEST(Pipeline, UnknownUnitRejected) {
  std::vector<ReferenceAttribute> refs = {MakeRef("r", {{1.0, 1.0}})};
  auto pipeline = std::move(CrosswalkPipeline::Create({"z1"}, {"c1", "c2"},
                                                      refs)).ValueOrDie();
  EXPECT_FALSE(pipeline.Realign({{"nope", 1.0}}).ok());
}

TEST(Pipeline, MissingUnitsDefaultToZero) {
  std::vector<ReferenceAttribute> refs = {
      MakeRef("r", {{1.0, 0.0}, {0.0, 1.0}})};
  auto pipeline = std::move(CrosswalkPipeline::Create({"z1", "z2"},
                                                      {"c1", "c2"}, refs)).ValueOrDie();
  auto res = std::move(pipeline.Realign({{"z2", 5.0}})).ValueOrDie();
  EXPECT_NEAR(res.target_estimates[0], 0.0, 1e-12);
  EXPECT_NEAR(res.target_estimates[1], 5.0, 1e-12);
}

TEST(Pipeline, CreateValidatesShapes) {
  std::vector<ReferenceAttribute> refs = {MakeRef("r", {{1.0, 1.0}})};
  EXPECT_FALSE(CrosswalkPipeline::Create({}, {"c"}, refs).ok());
  EXPECT_FALSE(CrosswalkPipeline::Create({"z"}, {"c"},
                                         std::vector<ReferenceAttribute>{})
                   .ok());
  // Reference DM is 1x2 but target list has 1 unit.
  EXPECT_FALSE(CrosswalkPipeline::Create({"z"}, {"c"}, refs).ok());
}

TEST(Pipeline, CustomMethod) {
  std::vector<ReferenceAttribute> refs = {
      MakeRef("pop", {{1.0, 3.0}, {2.0, 2.0}})};
  auto dasy = std::make_shared<Dasymetric>(size_t{0});
  auto pipeline = std::move(CrosswalkPipeline::Create(
      {"z1", "z2"}, {"c1", "c2"}, refs, dasy)).ValueOrDie();
  EXPECT_EQ(pipeline.method().name(), "dasymetric");
  auto res = std::move(pipeline.Realign({{"z1", 8.0}, {"z2", 4.0}})).ValueOrDie();
  EXPECT_NEAR(res.target_estimates[0], 2.0 + 2.0, 1e-9);
  EXPECT_NEAR(res.target_estimates[1], 6.0 + 2.0, 1e-9);
}

// Dimension independence (paper §3.4): realigning a 1-D histogram via
// interval overlays uses the exact same core code path.
TEST(GeoAlign, OneDimensionalHistogramRealignment) {
  auto narrow = std::move(partition::IntervalPartition::Create(
      {0, 10, 20, 30, 40, 60})).ValueOrDie();
  auto wide = std::move(partition::IntervalPartition::Create({0, 25, 60})).ValueOrDie();
  auto ov = std::move(partition::OverlayIntervals(narrow, wide)).ValueOrDie();

  // Reference: a known fine-grained population histogram (uniform
  // density inside each narrow bin).
  CrosswalkInput input;
  ReferenceAttribute density;
  density.name = "uniform_density";
  density.disaggregation = ov.MeasureDm();
  density.source_aggregates = density.disaggregation.RowSums();
  input.references.push_back(density);
  input.objective_source = {100.0, 200.0, 100.0, 50.0, 50.0};
  GeoAlign geoalign;
  auto res = std::move(geoalign.Crosswalk(input)).ValueOrDie();
  // With a uniform within-bin density, bin [20,30) splits 50/50.
  EXPECT_NEAR(res.target_estimates[0], 100.0 + 200.0 + 50.0, 1e-9);
  EXPECT_NEAR(res.target_estimates[1], 50.0 + 50.0 + 50.0, 1e-9);
}

}  // namespace
}  // namespace geoalign::core
