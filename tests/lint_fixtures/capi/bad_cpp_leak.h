/* Fixture: C++ leaking into a public C ABI header — every line below
 * breaks a plain C99 compile or drifts from the ABI contract, and each
 * must be flagged by geoalign-capi-abi (tests/lint_test.sh). */
#ifndef GEOALIGN_TESTS_LINT_FIXTURES_CAPI_BAD_CPP_LEAK_H_
#define GEOALIGN_TESTS_LINT_FIXTURES_CAPI_BAD_CPP_LEAK_H_

#include <cstdint>
#include <vector>

namespace geoalign {

class BadHandle {};

template <typename T>
struct BadBox {
  T value;
};

enum BadStatus { kBadOk = 0 };

void BadByReference(const std::vector<double>& column);

}  // namespace geoalign

#endif /* GEOALIGN_TESTS_LINT_FIXTURES_CAPI_BAD_CPP_LEAK_H_ */
