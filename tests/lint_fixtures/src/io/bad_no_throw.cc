// Fixture for tools/geoalign_lint.py: `throw` in library code must be
// flagged — fallible functions return Status/Result instead.
#include <stdexcept>
#include <string>

namespace geoalign::io {

int ParseDigitOrDie(const std::string& s) {
  if (s.empty()) {
    throw std::invalid_argument("empty field");  // violation
  }
  return s[0] - '0';
}

}  // namespace geoalign::io
