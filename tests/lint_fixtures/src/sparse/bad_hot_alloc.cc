// Fixture for the geoalign-hot-alloc rule: heap allocation inside a
// GEOALIGN_HOT_LOOP region must be flagged; the same constructs
// outside the region (or behind NOLINT) must pass.
#include <cstddef>
#include <vector>

namespace geoalign::sparse {

double HotLoopFixture(const std::vector<double>& values,
                      std::vector<double>* out,
                      std::vector<double>& staged) {
  // Allocation outside the marked region is fine.
  std::vector<double> warmup(values.size(), 0.0);
  warmup.reserve(values.size() + 1);

  double total = 0.0;
  // GEOALIGN_HOT_LOOP_BEGIN
  for (size_t i = 0; i < values.size(); ++i) {
    std::vector<double> tmp(4, values[i]);  // violation: construction
    out->push_back(tmp[0]);                 // violation: growth call
    // Reference bindings do not allocate — must stay clean.
    std::vector<double>& alias = staged;
    alias[0] = tmp[0];
    total += tmp[0];
    staged.push_back(total);  // NOLINT(geoalign-hot-alloc)
  }
  // GEOALIGN_HOT_LOOP_END
  return total;
}

}  // namespace geoalign::sparse
