// Fixture for tools/geoalign_lint.py: iterating an unordered container
// inside a kernel subsystem (src/sparse) must be flagged — iteration
// order is nondeterministic across standard libraries and hash seeds.
#include <cstddef>
#include <unordered_map>
#include <unordered_set>

namespace geoalign::sparse {

double SumValuesNondeterministically(
    const std::unordered_map<size_t, double>& weights) {
  double total = 0.0;
  for (const auto& [row, w] : weights) {  // violation: range-for
    total += w;
  }
  return total;
}

size_t CountViaIterators(const std::unordered_set<size_t>& rows) {
  size_t n = 0;
  for (auto it = rows.begin(); it != rows.end(); ++it) {  // violation
    ++n;
  }
  return n;
}

}  // namespace geoalign::sparse
