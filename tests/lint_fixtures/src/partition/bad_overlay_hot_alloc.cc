// Fixture proving the geoalign-hot-alloc rule covers src/partition/
// (and by the same dispatch, src/geom/) — the overlay engine's marked
// regions are machine-checked like sparse kernels are.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace geoalign::partition {

struct FixtureCell {
  uint32_t source;
  uint32_t target;
  double measure;
};

double OverlayHotLoopFixture(const std::vector<double>& areas,
                             std::vector<FixtureCell>* cells,
                             std::vector<uint32_t>& candidates) {
  // Cold-section preparation may allocate freely.
  std::vector<double> prepared(areas);
  cells->reserve(areas.size());

  double total = 0.0;
  // GEOALIGN_HOT_LOOP_BEGIN
  for (size_t k = 0; k < areas.size(); ++k) {
    std::vector<uint32_t> pair_ids(2, 0);             // violation: construction
    cells->push_back({pair_ids[0], 0, areas[k]});     // violation: growth call
    total += prepared[k];
    candidates.push_back(pair_ids[0]);  // NOLINT(geoalign-hot-alloc)
  }
  // GEOALIGN_HOT_LOOP_END
  return total;
}

}  // namespace geoalign::partition
