// Fixture for tools/geoalign_lint.py: near-miss patterns that must NOT
// be flagged. Every rule has a legitimate look-alike below; the lint
// gate asserts this file comes back clean.
#include <cstddef>
#include <unordered_map>

namespace geoalign {

class Status {
 public:
  bool ok() const { return true; }
};

Status Fallible(int n);

// Lookups (find / count / operator[] / comparison against end()) into
// unordered containers are fine anywhere; only iteration is ordered-
// sensitive. This file also lives outside the kernel dirs.
size_t Lookup(const std::unordered_map<size_t, double>& index, size_t key) {
  auto it = index.find(key);
  if (it == index.end()) return 0;
  return static_cast<size_t>(it->second);
}

// Ordering comparisons against float literals are fine; only ==/!=.
bool Saturated(double x) { return x >= 1.0 || x <= 0.0; }

// Deliberate exact comparison, suppressed with a rationale.
bool IsSentinel(double x) {
  return x == -1.0;  // NOLINT(geoalign-float-eq): sentinel assigned exactly
}

// "throw" in comments or strings is not a throw statement: never throw.
const char* Motto() { return "we never throw"; }

// A consumed Status is not a discard.
int Consume(int n) {
  Status s = Fallible(n);
  if (!s.ok()) return -1;
  return n;
}

}  // namespace geoalign
