// Fixture for tools/geoalign_lint.py: legacy recompile-per-call
// crosswalk entry points inside a serving hot path (src/eval/ here)
// must be flagged unless NOLINT'ed with a rationale.
namespace geoalign::eval {

struct FakeResult {};
struct FakeInput {};
struct FakeMethod {
  FakeResult Crosswalk(const FakeInput&) const { return {}; }
};
FakeResult CrosswalkUncompiled(const FakeInput&) { return {}; }

FakeResult ServeColumn(const FakeMethod& method, const FakeInput& input) {
  return method.Crosswalk(input);  // violation: recompiles per call
}

FakeResult ServeColumnPtr(const FakeMethod* method, const FakeInput& input) {
  return method->Crosswalk(input);  // violation: pointer member call
}

FakeResult ServeColumnLegacy(const FakeInput& input) {
  return CrosswalkUncompiled(input);  // violation: legacy oracle entry
}

FakeResult ServeColumnSuppressed(const FakeMethod& method,
                                 const FakeInput& input) {
  // NOLINTNEXTLINE(geoalign-plan-bypass): baselines have no plan form.
  return method.Crosswalk(input);
}

}  // namespace geoalign::eval
