// Fixture for tools/geoalign_lint.py: direct MetricsSnapshot
// serialization outside src/obs/ must be flagged — every exposition of
// the registry goes through the one writer in obs/export.h so the CLI,
// the C ABI, and the flight recorder stay byte-identical
// (docs/observability.md).

namespace geoalign::core {

struct FakeSnapshot {
  const char* ToJson() const { return "{}"; }
  const char* ToText() const { return ""; }
};

const char* DumpMetricsJson(const FakeSnapshot& snapshot) {
  // violation: .ToJson() outside src/obs/
  return snapshot.ToJson();
}

const char* DumpMetricsText(const FakeSnapshot* snapshot) {
  // violation: ->ToText() outside src/obs/
  return snapshot->ToText();
}

}  // namespace geoalign::core
