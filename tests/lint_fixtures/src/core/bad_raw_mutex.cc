// Seeded violation for the geoalign-raw-mutex rule: raw std locking
// primitives in library code outside common/thread_annotations.h.
// Every spelling here must be flagged — the annotated common::Mutex /
// common::MutexLock / common::CondVar wrappers are the only blessed
// locking layer (docs/static_analysis.md).
#include <mutex>

namespace geoalign::core {

int CountUnderRawLock() {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  static int count = 0;
  return ++count;
}

}  // namespace geoalign::core
