// Fixture for tools/geoalign_lint.py: raw std::chrono clock reads in
// library code outside src/obs/ must be flagged — all timing goes
// through the obs primitives so one steady_clock policy holds
// tree-wide (docs/observability.md).
#include <chrono>

namespace geoalign::core {

long TicksNow() {
  // violation: raw steady_clock read outside src/obs/
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long WallNow() {
  using namespace std::chrono;  // partially qualified spelling
  return system_clock::now().time_since_epoch().count();  // violation
}

long HighResNow() {
  // violation: high_resolution_clock is an alias with no extra policy
  return std::chrono::high_resolution_clock::now()
      .time_since_epoch()
      .count();
}

}  // namespace geoalign::core
