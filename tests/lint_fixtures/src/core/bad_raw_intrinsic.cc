// Fixture for tools/geoalign_lint.py: raw SIMD intrinsics in library
// code outside src/sparse/simd/ must be flagged — vectorized
// instruction sequences live in the audited kernel directory, paired
// with a scalar reference and covered by the differential harness
// (tests/simd_kernel_test.cc). Vector work elsewhere goes through the
// PanelKernels table.
#include <immintrin.h>  // violation: vendor SIMD header outside simd/

#include <cstddef>

namespace geoalign::core {

void HandRolledAxpy(double* dst, const double* src, double w, size_t n) {
  // violation ×3: __m256d type and _mm256_* intrinsic calls
  const __m256d wv = _mm256_set1_pd(w);
  for (size_t i = 0; i + 4 <= n; i += 4) {
    __m256d prod = _mm256_mul_pd(wv, _mm256_loadu_pd(src + i));
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i), prod));
  }
}

// The lint is spelling-level, not target-gated: NEON q-form f64
// spellings are flagged even inside an inactive preprocessor branch,
// so a portability #ifdef cannot smuggle vector code past the audit.
#if defined(__aarch64__)
void HandRolledAddNeonSpelling(double* dst, const double* src) {
  // violation ×2: float64x2_t type and v*q_f64 intrinsic spellings
  float64x2_t sum = vaddq_f64(vld1q_f64(dst), vld1q_f64(src));
  vst1q_f64(dst, sum);
}
#endif

}  // namespace geoalign::core
