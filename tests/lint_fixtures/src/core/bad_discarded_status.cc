// Fixture for tools/geoalign_lint.py: calling a Status/Result-returning
// function as a bare statement (discarding the error) must be flagged.
namespace geoalign {

class Status {
 public:
  bool ok() const { return true; }
};

namespace core {

Status ValidateInput(int n);
Status WriteCheckpoint(int n) { return Status(); }

int Pipeline(int n) {
  ValidateInput(n);  // violation: discarded Status
  if (n > 0) WriteCheckpoint(n);  // violation: discarded Status
  (void)ValidateInput(n);  // violation: (void) hides the discard
  return n;
}

}  // namespace core
}  // namespace geoalign
