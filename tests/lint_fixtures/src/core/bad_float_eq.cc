// Fixture for tools/geoalign_lint.py: raw ==/!= against a
// floating-point literal in library code must be flagged.
namespace geoalign::core {

bool IsUnitWeight(double w) {
  return w == 1.0;  // violation: raw equality against a float literal
}

bool HasResidual(double r) {
  if (r != 0.0) return true;  // violation
  return 1e-9 == r;           // violation: literal on the left
}

}  // namespace geoalign::core
