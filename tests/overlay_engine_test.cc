// Differential gates for the geometric overlay engine
// (partition/overlay.cc): with fast paths off the engine must be
// BIT-identical to OverlayPolygonsReference (the pre-engine per-target
// query + per-pair IntersectionArea path) over every universe shape ×
// thread count; the value-changing fast paths get their own
// differential with a documented tolerance; a warmed OverlayWorkspace
// must serve overlays with zero hot-path allocations; and the
// dual-tree candidate join must agree with the brute-force bbox join.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/float_eq.h"
#include "common/random.h"
#include "geom/voronoi.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "partition/overlay.h"
#include "partition/overlay_prepared.h"
#include "spatial/rtree.h"

namespace geoalign::partition {
namespace {

// Voronoi layer: convex hole-free cells (the paper's zip/county shape).
PolygonPartition MakeVoronoiLayer(Rng& rng, size_t n,
                                  const geom::BBox& world) {
  std::vector<geom::Point> sites;
  for (size_t i = 0; i < n; ++i) {
    sites.push_back({rng.Uniform(world.min_x + 0.2, world.max_x - 0.2),
                     rng.Uniform(world.min_y + 0.2, world.max_y - 0.2)});
  }
  auto rings = std::move(geom::VoronoiCells(sites, world)).ValueOrDie();
  std::vector<geom::Polygon> polys;
  for (auto& r : rings) {
    if (r.size() >= 3) polys.emplace_back(std::move(r));
  }
  return std::move(PolygonPartition::Create(std::move(polys))).ValueOrDie();
}

// Perturbed-grid layer; optional square holes make units non-convex so
// the fan path (not the convex fast path) is exercised.
PolygonPartition MakeGridLayer(Rng& rng, size_t nx, size_t ny,
                               double world, bool with_holes) {
  double dx = world / static_cast<double>(nx);
  double dy = world / static_cast<double>(ny);
  std::vector<geom::Polygon> polys;
  for (size_t gy = 0; gy < ny; ++gy) {
    for (size_t gx = 0; gx < nx; ++gx) {
      double x0 = static_cast<double>(gx) * dx;
      double y0 = static_cast<double>(gy) * dy;
      double j = rng.Uniform(0.0, 0.08 * dx);
      geom::Ring outer = {{x0 + j, y0},
                          {x0 + dx, y0 + j},
                          {x0 + dx - j, y0 + dy},
                          {x0, y0 + dy - j}};
      std::vector<geom::Ring> holes;
      if (with_holes && (gx + gy) % 3 == 0) {
        double cx = x0 + 0.5 * dx;
        double cy = y0 + 0.5 * dy;
        double h = 0.15 * std::min(dx, dy);
        // CW hole ring (Polygon::Create normalizes orientation).
        holes.push_back({{cx - h, cy - h},
                         {cx - h, cy + h},
                         {cx + h, cy + h},
                         {cx + h, cy - h}});
      }
      polys.push_back(std::move(geom::Polygon::Create(std::move(outer),
                                                      std::move(holes)))
                          .ValueOrDie());
    }
  }
  return std::move(PolygonPartition::Create(std::move(polys))).ValueOrDie();
}

// Small L-shaped islands strictly inside the cells of a coarse grid —
// every island is fully contained in one coarse unit, and the L makes
// it non-convex, so the pair falls past the convex fast path and the
// containment fast path gets real hits.
PolygonPartition MakeIslandLayer(Rng& rng, size_t nx, size_t ny,
                                 double world) {
  double dx = world / static_cast<double>(nx);
  double dy = world / static_cast<double>(ny);
  std::vector<geom::Polygon> polys;
  for (size_t gy = 0; gy < ny; ++gy) {
    for (size_t gx = 0; gx < nx; ++gx) {
      double cx = (static_cast<double>(gx) + 0.5) * dx +
                  rng.Uniform(-0.1 * dx, 0.1 * dx);
      double cy = (static_cast<double>(gy) + 0.5) * dy +
                  rng.Uniform(-0.1 * dy, 0.1 * dy);
      double h = rng.Uniform(0.1, 0.25) * std::min(dx, dy);
      polys.emplace_back(geom::Ring{
          {cx - h, cy - h}, {cx + h, cy - h}, {cx + h, cy},
          {cx, cy}, {cx, cy + h}, {cx - h, cy + h}});
    }
  }
  return std::move(PolygonPartition::Create(std::move(polys))).ValueOrDie();
}

void ExpectBitIdentical(const OverlayResult& got, const OverlayResult& want,
                        const char* label) {
  ASSERT_EQ(got.cells.size(), want.cells.size()) << label;
  for (size_t k = 0; k < got.cells.size(); ++k) {
    EXPECT_EQ(got.cells[k].source, want.cells[k].source) << label << " " << k;
    EXPECT_EQ(got.cells[k].target, want.cells[k].target) << label << " " << k;
    EXPECT_TRUE(ExactlyEqual(got.cells[k].measure,
                                     want.cells[k].measure))
        << label << " cell " << k << ": " << got.cells[k].measure << " vs "
        << want.cells[k].measure;
  }
}

TEST(OverlayEngineTest, BitIdenticalToReferenceAcrossUniversesAndThreads) {
  Rng rng(9100);
  geom::BBox world(0, 0, 10, 10);
  struct Universe {
    const char* name;
    PolygonPartition source;
    PolygonPartition target;
  };
  std::vector<Universe> universes;
  universes.push_back({"voronoi x voronoi", MakeVoronoiLayer(rng, 60, world),
                       MakeVoronoiLayer(rng, 13, world)});
  universes.push_back({"grid x voronoi",
                       MakeGridLayer(rng, 9, 9, 10.0, /*with_holes=*/false),
                       MakeVoronoiLayer(rng, 8, world)});
  universes.push_back({"holey grid x shifted grid",
                       MakeGridLayer(rng, 8, 8, 10.0, /*with_holes=*/true),
                       MakeGridLayer(rng, 5, 5, 10.0, /*with_holes=*/false)});

  for (const Universe& u : universes) {
    OverlayResult ref = std::move(OverlayPolygonsReference(
                            u.source, u.target, /*min_area=*/1e-9))
                            .ValueOrDie();
    ASSERT_FALSE(ref.cells.empty()) << u.name;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
      OverlayOptions opts;
      opts.min_area = 1e-9;
      opts.threads = threads;
      OverlayResult got =
          std::move(OverlayPolygons(u.source, u.target, opts)).ValueOrDie();
      ExpectBitIdentical(got, ref, u.name);
    }
  }
}

TEST(OverlayEngineTest, FastPathsMatchExactPathWithinTolerance) {
  // Containment hits are exact (the measure is the contained polygon's
  // Area(), which IS the real intersection area); convex hits replace
  // the triangle-fan sum with one Sutherland–Hodgman pass, identical
  // in real arithmetic but free to differ in the last ulps — 1e-9
  // relative is orders of magnitude looser than the observed error and
  // still far tighter than any downstream use (docs/architecture.md).
  bool saved = obs::Enabled();
  obs::SetEnabled(true);
  Rng rng(9200);
  geom::BBox world(0, 0, 10, 10);
  struct Universe {
    const char* name;
    PolygonPartition source;
    PolygonPartition target;
  };
  std::vector<Universe> universes;
  universes.push_back({"voronoi x voronoi (convex hits)",
                       MakeVoronoiLayer(rng, 50, world),
                       MakeVoronoiLayer(rng, 11, world)});
  universes.push_back({"voronoi x islands (containment hits)",
                       MakeVoronoiLayer(rng, 6, world),
                       MakeIslandLayer(rng, 7, 7, 10.0)});
  obs::Counter& contain_hits = obs::MetricsRegistry::Global().GetCounter(
      "overlay.fastpath_contain_hits");
  obs::Counter& convex_hits = obs::MetricsRegistry::Global().GetCounter(
      "overlay.fastpath_convex_hits");
  uint64_t contain_before = contain_hits.Value();
  uint64_t convex_before = convex_hits.Value();

  for (const Universe& u : universes) {
    OverlayOptions exact;
    exact.min_area = 1e-9;
    OverlayOptions fast = exact;
    fast.fast_paths = true;
    OverlayResult want =
        std::move(OverlayPolygons(u.source, u.target, exact)).ValueOrDie();
    OverlayResult got =
        std::move(OverlayPolygons(u.source, u.target, fast)).ValueOrDie();
    ASSERT_EQ(got.cells.size(), want.cells.size()) << u.name;
    for (size_t k = 0; k < got.cells.size(); ++k) {
      EXPECT_EQ(got.cells[k].source, want.cells[k].source) << u.name;
      EXPECT_EQ(got.cells[k].target, want.cells[k].target) << u.name;
      EXPECT_NEAR(got.cells[k].measure, want.cells[k].measure,
                  1e-9 * std::max(1.0, want.cells[k].measure))
          << u.name << " cell " << k;
    }
  }
  EXPECT_GT(contain_hits.Value(), contain_before)
      << "island universe produced no containment fast-path hits";
  EXPECT_GT(convex_hits.Value(), convex_before)
      << "voronoi universe produced no convex fast-path hits";
  obs::SetEnabled(saved);
}

TEST(OverlayEngineTest, WarmWorkspaceServesOverlaysWithZeroHotPathAllocs) {
  // The zero-allocation promise: the first overlay through a fresh
  // workspace may grow its buffers; every later same-shape overlay
  // must not (overlay.hot_path_allocs delta == 0, and the workspace's
  // own growth ledger stays flat).
  bool saved = obs::Enabled();
  obs::SetEnabled(true);
  {
    Rng rng(9300);
    geom::BBox world(0, 0, 10, 10);
    PolygonPartition source = MakeVoronoiLayer(rng, 40, world);
    PolygonPartition target = MakeVoronoiLayer(rng, 9, world);

    OverlayWorkspace ws;
    OverlayOptions opts;
    opts.min_area = 1e-9;
    opts.workspace = &ws;
    OverlayResult warm =
        std::move(OverlayPolygons(source, target, opts)).ValueOrDie();
    ASSERT_FALSE(warm.cells.empty());

    obs::Counter& allocs = obs::MetricsRegistry::Global().GetCounter(
        "overlay.hot_path_allocs");
    uint64_t counter_before = allocs.Value();
    uint64_t ledger_before = ws.alloc_events();
    for (int rep = 0; rep < 3; ++rep) {
      OverlayResult again =
          std::move(OverlayPolygons(source, target, opts)).ValueOrDie();
      ExpectBitIdentical(again, warm, "workspace reuse");
    }
    EXPECT_EQ(allocs.Value(), counter_before)
        << "warmed workspace must serve overlays without buffer growth";
    EXPECT_EQ(ws.alloc_events(), ledger_before);
  }
  obs::SetEnabled(saved);
}

TEST(OverlayEngineTest, WorkspaceReusedAcrossDifferentUniverses) {
  // One workspace serving unrelated overlays back-to-back must not
  // leak state between them (stale chunk cells, stale pairs).
  Rng rng(9400);
  geom::BBox world(0, 0, 10, 10);
  PolygonPartition a1 = MakeVoronoiLayer(rng, 30, world);
  PolygonPartition a2 = MakeVoronoiLayer(rng, 7, world);
  PolygonPartition b1 = MakeGridLayer(rng, 6, 6, 10.0, /*with_holes=*/true);
  PolygonPartition b2 = MakeGridLayer(rng, 4, 4, 10.0, /*with_holes=*/false);

  OverlayWorkspace ws;
  OverlayOptions opts;
  opts.min_area = 1e-9;
  opts.workspace = &ws;
  for (int rep = 0; rep < 2; ++rep) {
    OverlayResult got_a =
        std::move(OverlayPolygons(a1, a2, opts)).ValueOrDie();
    OverlayResult ref_a =
        std::move(OverlayPolygonsReference(a1, a2, 1e-9)).ValueOrDie();
    ExpectBitIdentical(got_a, ref_a, "universe A");
    OverlayResult got_b =
        std::move(OverlayPolygons(b1, b2, opts)).ValueOrDie();
    OverlayResult ref_b =
        std::move(OverlayPolygonsReference(b1, b2, 1e-9)).ValueOrDie();
    ExpectBitIdentical(got_b, ref_b, "universe B");
  }
}

TEST(OverlayEngineTest, DualTreeJoinMatchesBruteForceAndPerItemQueries) {
  Rng rng(9500);
  for (int round = 0; round < 5; ++round) {
    auto make_boxes = [&](size_t n) {
      std::vector<geom::BBox> boxes;
      for (size_t i = 0; i < n; ++i) {
        double x = rng.Uniform(0.0, 50.0);
        double y = rng.Uniform(0.0, 50.0);
        boxes.emplace_back(x, y, x + rng.Uniform(0.1, 6.0),
                           y + rng.Uniform(0.1, 6.0));
      }
      return boxes;
    };
    std::vector<geom::BBox> boxes_a = make_boxes(1 + rng.UniformInt(
                                                         uint64_t{120}));
    std::vector<geom::BBox> boxes_b = make_boxes(1 + rng.UniformInt(
                                                         uint64_t{120}));
    spatial::RTree tree_a(boxes_a);
    spatial::RTree tree_b(boxes_b);

    std::vector<std::pair<uint32_t, uint32_t>> joined;
    tree_a.DualTreeJoin(tree_b, &joined);

    std::vector<std::pair<uint32_t, uint32_t>> brute;
    for (uint32_t i = 0; i < boxes_a.size(); ++i) {
      for (uint32_t j = 0; j < boxes_b.size(); ++j) {
        if (boxes_a[i].Intersects(boxes_b[j])) brute.emplace_back(i, j);
      }
    }
    std::vector<std::pair<uint32_t, uint32_t>> sorted = joined;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, brute) << "round " << round;

    // The join's pair set restricted to one query box equals Query's.
    std::vector<uint32_t> hits;
    tree_a.Query(boxes_b[0], &hits);
    std::vector<uint32_t> from_join;
    for (const auto& [i, j] : joined) {
      if (j == 0) from_join.push_back(i);
    }
    std::sort(hits.begin(), hits.end());
    std::sort(from_join.begin(), from_join.end());
    EXPECT_EQ(hits, from_join) << "round " << round;

    // Join emission order is deterministic: a second run is identical.
    std::vector<std::pair<uint32_t, uint32_t>> joined_again;
    tree_a.DualTreeJoin(tree_b, &joined_again);
    EXPECT_EQ(joined, joined_again);
  }
}

TEST(OverlayEngineTest, QueryBufferOverloadsMatchReturningOverloads) {
  Rng rng(9600);
  std::vector<geom::BBox> boxes;
  for (size_t i = 0; i < 200; ++i) {
    double x = rng.Uniform(0.0, 30.0);
    double y = rng.Uniform(0.0, 30.0);
    boxes.emplace_back(x, y, x + rng.Uniform(0.1, 4.0),
                       y + rng.Uniform(0.1, 4.0));
  }
  spatial::RTree tree(boxes);
  std::vector<uint32_t> reused;
  for (int q = 0; q < 40; ++q) {
    double x = rng.Uniform(-2.0, 30.0);
    double y = rng.Uniform(-2.0, 30.0);
    geom::BBox query(x, y, x + rng.Uniform(0.1, 8.0),
                     y + rng.Uniform(0.1, 8.0));
    tree.Query(query, &reused);
    EXPECT_EQ(reused, tree.Query(query)) << "query " << q;
    geom::Point p{x, y};
    tree.QueryPoint(p, &reused);
    EXPECT_EQ(reused, tree.QueryPoint(p)) << "point query " << q;
  }
}

}  // namespace
}  // namespace geoalign::partition
