#!/usr/bin/env bash
# Negative-compile harness for the Clang Thread Safety Analysis layer
# (src/common/thread_annotations.h; docs/static_analysis.md).
#
# Every bad fixture under tests/tsa_fixtures/ seeds exactly one
# locking bug (unguarded read, missing REQUIRES, double lock, unlock
# without lock, wrong mutex, EXCLUDES violation) and MUST fail to
# compile under -Wthread-safety -Wthread-safety-beta -Werror, with the
# diagnostic attributable to the analysis (not some unrelated error).
# clean.cc exercises the whole wrapper API correctly and MUST compile
# warning-free. Together they regression-test the annotations
# themselves: weakening a wrapper attribute flips a bad fixture to
# compiling; a false positive breaks the clean one.
#
# Requires clang++ (the capability system is clang-only) and FAILS
# LOUDLY when it is absent — a silently skipped gate reads as a
# passing one; skip explicitly with SKIP_TSA=1 in tools/ci.sh.
#
# Usage: tsa_test.sh [repo_root]   (default: the script's parent dir)
# Environment knobs:
#   CLANGXX  clang++ binary to use (default: clang++)
set -u
ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
CLANGXX="${CLANGXX:-clang++}"
FIXTURES="$ROOT/tests/tsa_fixtures"

if ! command -v "$CLANGXX" >/dev/null 2>&1; then
  echo "tsa_test: '$CLANGXX' not found." >&2
  echo "The thread-safety fixtures need clang (install clang or point" >&2
  echo "CLANGXX at a binary). Refusing to pass silently; set SKIP_TSA=1" >&2
  echo "to skip this gate in tools/ci.sh explicitly." >&2
  exit 3
fi

FLAGS=(-std=c++20 -fsyntax-only "-I$ROOT/src"
       -Wthread-safety -Wthread-safety-beta -Werror)
failures=0

# The fixture must fail to compile AND the diagnostics must come from
# the thread-safety analysis (clang names the flag in brackets, e.g.
# [-Werror,-Wthread-safety-analysis]); any other error means the
# fixture rotted rather than the annotation firing.
expect_no_compile() {
  local file="$1" out rc
  out=$("$CLANGXX" "${FLAGS[@]}" "$FIXTURES/$file" 2>&1)
  rc=$?
  if [[ $rc -eq 0 ]]; then
    echo "FAIL: $file compiled; its seeded locking bug went undetected"
    failures=$((failures + 1))
  elif ! grep -q -- "-Wthread-safety" <<<"$out"; then
    echo "FAIL: $file failed for a reason other than thread safety:"
    echo "$out"
    failures=$((failures + 1))
  else
    echo "ok: $file rejected by -Wthread-safety"
  fi
}

expect_compiles() {
  local file="$1" out rc
  out=$("$CLANGXX" "${FLAGS[@]}" "$FIXTURES/$file" 2>&1)
  rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "FAIL: $file must compile warning-free, got:"
    echo "$out"
    failures=$((failures + 1))
  else
    echo "ok: $file compiles clean"
  fi
}

expect_no_compile unguarded_read.cc
expect_no_compile missing_requires.cc
expect_no_compile double_lock.cc
expect_no_compile unlock_without_lock.cc
expect_no_compile wrong_mutex.cc
expect_no_compile excludes_violation.cc
expect_compiles clean.cc

if [[ $failures -ne 0 ]]; then
  echo "$failures thread-safety fixture check(s) failed"
  exit 1
fi
echo "tsa fixtures: all checks passed"
