// The geometric path: unit systems given as polygon layers (the GIS
// feature layers of paper Fig. 2). Voronoi "zips" and a rectangular
// "county" grid are overlaid with the R-tree + clipping pipeline; a
// clustered point attribute is aggregated into both layers, and
// GeoAlign is compared against areal weighting on realigning a second
// attribute. Demonstrates WKT export for interop with PostGIS/shapely.
//
// Build & run:   ./build/examples/polygon_overlay

#include <cstdio>

#include "common/random.h"
#include "core/areal_weighting.h"
#include "core/geoalign.h"
#include "eval/metrics.h"
#include "geom/voronoi.h"
#include "geom/wkt.h"
#include "partition/disaggregation.h"
#include "partition/overlay.h"
#include "synth/point_process.h"

using namespace geoalign;

int main() {
  Rng rng(42);
  geom::BBox world(0, 0, 100, 100);

  // "Zip" layer: Voronoi cells of 300 random sites.
  std::vector<geom::Point> sites;
  for (int i = 0; i < 300; ++i) {
    sites.push_back({rng.Uniform(0.5, 99.5), rng.Uniform(0.5, 99.5)});
  }
  auto rings = std::move(geom::VoronoiCells(sites, world)).ValueOrDie();
  std::vector<geom::Polygon> zip_polys;
  for (auto& ring : rings) zip_polys.emplace_back(std::move(ring));
  auto zips = std::move(partition::PolygonPartition::Create(zip_polys)).ValueOrDie();

  // "County" layer: a 5x5 grid.
  std::vector<geom::Polygon> county_polys;
  for (int j = 0; j < 5; ++j) {
    for (int i = 0; i < 5; ++i) {
      county_polys.push_back(geom::Polygon::FromBBox(
          geom::BBox(i * 20.0, j * 20.0, (i + 1) * 20.0, (j + 1) * 20.0)));
    }
  }
  auto counties = std::move(partition::PolygonPartition::Create(county_polys)).ValueOrDie();

  // Geometric overlay (intersection areas via polygon clipping).
  auto overlay = std::move(partition::OverlayPolygons(zips, counties, 1e-9)).ValueOrDie();
  std::printf("overlay: %zu zips x %zu counties -> %zu intersection cells, "
              "area %.1f (world %.1f)\n",
              zips.NumUnits(), counties.NumUnits(), overlay.cells.size(),
              overlay.TotalMeasure(), world.Area());

  // Reference: a clustered "population" point process with known
  // per-intersection counts.
  auto pop_points = synth::SampleThomasProcess(world, 25, 300.0, 2.0, rng);
  linalg::Vector ones(pop_points.size(), 1.0);
  auto pop_dm = std::move(partition::DmFromPoints(zips, counties, pop_points,
                                                  ones)).ValueOrDie();
  core::ReferenceAttribute population;
  population.name = "population";
  population.disaggregation = pop_dm;
  population.source_aggregates = pop_dm.RowSums();

  // Objective: "restaurants" — a thinned, jittered copy of the
  // population (correlated but not identical). Its true county
  // aggregates are known for evaluation.
  auto rest_points = synth::ThinPoints(pop_points, 0.06, 1.5, world, rng);
  linalg::Vector rest_ones(rest_points.size(), 1.0);
  linalg::Vector objective =
      partition::AggregatePoints(zips, rest_points, rest_ones);
  linalg::Vector truth =
      partition::AggregatePoints(counties, rest_points, rest_ones);

  core::CrosswalkInput input;
  input.objective_source = objective;
  input.references.push_back(population);

  core::GeoAlign geoalign;
  auto ga = std::move(geoalign.Crosswalk(input)).ValueOrDie();
  core::ArealWeighting areal(overlay.MeasureDm());
  auto aw = std::move(areal.Crosswalk(input)).ValueOrDie();

  std::printf("\nrealigning %zu restaurants from zips to counties:\n",
              rest_points.size());
  std::printf("  GeoAlign (population reference)  NRMSE %.4f\n",
              eval::Nrmse(ga.target_estimates, truth));
  std::printf("  areal weighting (homogeneity)    NRMSE %.4f\n",
              eval::Nrmse(aw.target_estimates, truth));

  // WKT interop: export one zip polygon.
  std::printf("\nzip 0 as WKT (truncated): %.72s...\n",
              geom::ToWkt(zips.unit(0)).c_str());
  return 0;
}
