// GeoJSON in, GeoJSON out: load two polygon layers from GeoJSON
// (zips with an observed attribute, counties), overlay them
// geometrically, realign the attribute with GeoAlign using a
// population crosswalk, and emit the county layer as GeoJSON with the
// estimates attached as properties — the full GIS interop loop.
//
// Build & run:   ./build/examples/geojson_crosswalk

#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "core/geoalign.h"
#include "io/geojson.h"
#include "partition/disaggregation.h"
#include "partition/overlay.h"
#include "partition/polygon_partition.h"
#include "synth/point_process.h"

using namespace geoalign;

namespace {

// Two small hand-authored layers. In practice these come off disk via
// io::ReadGeoJsonFile.
constexpr const char* kZipsGeoJson = R"({
 "type": "FeatureCollection",
 "features": [
  {"type":"Feature","geometry":{"type":"Polygon","coordinates":
    [[[0,0],[6,0],[6,4],[0,4],[0,0]]]},
   "properties":{"zip":"Z1","steam":320}},
  {"type":"Feature","geometry":{"type":"Polygon","coordinates":
    [[[6,0],[10,0],[10,4],[6,4],[6,0]]]},
   "properties":{"zip":"Z2","steam":180}},
  {"type":"Feature","geometry":{"type":"Polygon","coordinates":
    [[[0,4],[10,4],[10,10],[0,10],[0,4]]]},
   "properties":{"zip":"Z3","steam":95}}
 ]})";

constexpr const char* kCountiesGeoJson = R"({
 "type": "FeatureCollection",
 "features": [
  {"type":"Feature","geometry":{"type":"Polygon","coordinates":
    [[[0,0],[10,0],[10,6],[0,6],[0,0]]]},
   "properties":{"county":"South"}},
  {"type":"Feature","geometry":{"type":"Polygon","coordinates":
    [[[0,6],[10,6],[10,10],[0,10],[0,6]]]},
   "properties":{"county":"North"}}
 ]})";

}  // namespace

int main() {
  // Parse both layers.
  auto zips_fc = std::move(io::ParseGeoJson(kZipsGeoJson)).ValueOrDie();
  auto counties_fc = std::move(io::ParseGeoJson(kCountiesGeoJson)).ValueOrDie();

  auto layer_of = [](const io::FeatureCollection& fc) {
    std::vector<geom::Polygon> polys;
    for (const io::Feature& f : fc.features) {
      for (const geom::Polygon& p : f.geometry) polys.push_back(p);
    }
    return std::move(partition::PolygonPartition::Create(polys)).ValueOrDie();
  };
  partition::PolygonPartition zips = layer_of(zips_fc);
  partition::PolygonPartition counties = layer_of(counties_fc);
  counties.ValidateDisjoint().CheckOK();

  // Objective column from the zip properties.
  core::CrosswalkInput input;
  for (const io::Feature& f : zips_fc.features) {
    input.objective_source.push_back(
        std::move(ParseDouble(f.properties.at("steam"))).ValueOrDie());
  }

  // Reference: a synthetic population point set located in both layers
  // (stand-in for a census block crosswalk).
  Rng rng(11);
  geom::BBox world(0, 0, 10, 10);
  std::vector<synth::GaussianCluster> mix = {
      {{2.0, 1.5}, 1.2, 5.0},  // southern metro
      {{7.5, 8.0}, 1.0, 1.0},  // northern town
  };
  auto people = synth::SampleGaussianMixture(world, mix, 20000, rng);
  linalg::Vector ones(people.size(), 1.0);
  core::ReferenceAttribute population;
  population.name = "population";
  population.disaggregation = std::move(partition::DmFromPoints(
      zips, counties, people, ones)).ValueOrDie();
  population.source_aggregates = population.disaggregation.RowSums();
  input.references.push_back(std::move(population));
  input.Validate().CheckOK();

  core::GeoAlign geoalign;
  auto res = std::move(geoalign.Crosswalk(input)).ValueOrDie();

  // Attach the estimates to the county features and serialize.
  for (size_t j = 0; j < counties_fc.features.size(); ++j) {
    counties_fc.features[j].properties["steam_estimate"] =
        StrFormat("%.2f", res.target_estimates[j]);
  }
  std::string out = io::ToGeoJson(counties_fc);
  std::printf("county layer with realigned steam estimates:\n%s\n",
              out.c_str());
  std::printf("\ntotal preserved: %.1f of %.1f\n",
              linalg::Sum(res.target_estimates),
              linalg::Sum(input.objective_source));
  return 0;
}
