// Aggregate interpolation in higher dimensions (paper §2.2, §3.4):
// environmental-exposure aggregates on a 3-D (x, y, time) grid are
// realigned to a coarser, incompatible 3-D grid. The GeoAlign core is
// dimension-agnostic; only the box overlay is 3-D.
//
// Build & run:   ./build/examples/multidim_crosswalk

#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "core/geoalign.h"
#include "eval/metrics.h"
#include "partition/box_partition.h"
#include "partition/overlay.h"
#include "sparse/coo_builder.h"

using namespace geoalign;

int main() {
  // Source grid: 6 x 6 spatial cells x 8 time slices.
  auto sx = std::move(partition::IntervalPartition::Uniform(0, 60, 6)).ValueOrDie();
  auto sy = std::move(partition::IntervalPartition::Uniform(0, 60, 6)).ValueOrDie();
  auto st = std::move(partition::IntervalPartition::Uniform(0, 24, 8)).ValueOrDie();
  auto source = std::move(partition::BoxPartition::Create({sx, sy, st})).ValueOrDie();

  // Target grid: coarser and misaligned in every dimension.
  auto tx = std::move(partition::IntervalPartition::Create(
      {0.0, 25.0, 45.0, 60.0})).ValueOrDie();
  auto ty = std::move(partition::IntervalPartition::Create(
      {0.0, 20.0, 50.0, 60.0})).ValueOrDie();
  auto tt = std::move(partition::IntervalPartition::Create(
      {0.0, 9.0, 17.0, 24.0})).ValueOrDie();
  auto target = std::move(partition::BoxPartition::Create({tx, ty, tt})).ValueOrDie();

  auto overlay = std::move(partition::OverlayBoxes(source, target)).ValueOrDie();
  std::printf("3-D overlay: %zu source boxes x %zu target boxes -> %zu "
              "intersection cells\n",
              source.NumUnits(), target.NumUnits(), overlay.cells.size());

  // Ground truth: an exposure field sampled at fine resolution; the
  // "true" aggregate of any box is the field integral approximated on
  // a fine lattice, which also yields an exact population-style
  // reference DM.
  auto field = [](double x, double y, double t) {
    double plume = std::exp(-((x - 18) * (x - 18) + (y - 40) * (y - 40)) /
                            180.0);
    double diurnal = 1.0 + 0.8 * std::sin(t * 2.0 * M_PI / 24.0);
    return plume * diurnal + 0.05;
  };
  sparse::CooBuilder ref_dm(source.NumUnits(), target.NumUnits());
  linalg::Vector truth(target.NumUnits(), 0.0);
  const int kSub = 4;  // sub-samples per source box per axis
  for (size_t u = 0; u < source.NumUnits(); ++u) {
    auto idx = source.AxisUnits(u);
    for (int ix = 0; ix < kSub; ++ix) {
      for (int iy = 0; iy < kSub; ++iy) {
        for (int it = 0; it < kSub; ++it) {
          double x = sx.lower(idx[0]) + (ix + 0.5) / kSub * sx.Measure(idx[0]);
          double y = sy.lower(idx[1]) + (iy + 0.5) / kSub * sy.Measure(idx[1]);
          double t = st.lower(idx[2]) + (it + 0.5) / kSub * st.Measure(idx[2]);
          double mass = field(x, y, t);
          size_t tgt = std::move(target.Locate({x, y, t})).ValueOrDie();
          ref_dm.Add(u, tgt, mass);
          truth[tgt] += mass;
        }
      }
    }
  }

  core::ReferenceAttribute exposure_ref;
  exposure_ref.name = "fine exposure model";
  exposure_ref.disaggregation = ref_dm.Build();
  exposure_ref.source_aggregates = exposure_ref.disaggregation.RowSums();

  // A second, homogeneous reference: box volume.
  core::ReferenceAttribute volume;
  volume.name = "volume";
  volume.disaggregation = overlay.MeasureDm();
  volume.source_aggregates = volume.disaggregation.RowSums();

  // Objective: measured exposure per source box — the model field plus
  // measurement noise, so neither reference matches it exactly.
  Rng rng(7);
  core::CrosswalkInput input;
  input.objective_source = exposure_ref.source_aggregates;
  for (double& v : input.objective_source) {
    v = std::max(0.0, v * (1.0 + 0.1 * rng.NextGaussian()));
  }
  input.references.push_back(exposure_ref);
  input.references.push_back(volume);

  core::GeoAlign geoalign;
  auto res = std::move(geoalign.Crosswalk(input)).ValueOrDie();

  std::printf("learned weights: model=%.3f volume=%.3f\n", res.weights[0],
              res.weights[1]);
  std::printf("NRMSE vs fine-grid truth: %.4f\n",
              eval::Nrmse(res.target_estimates, truth));
  std::printf("\n%-28s %10s %10s\n", "target box (x,y,t ranges)", "estimate",
              "truth");
  for (size_t j = 0; j < target.NumUnits(); ++j) {
    auto idx = target.AxisUnits(j);
    std::printf("[%2.0f,%2.0f)x[%2.0f,%2.0f)x[%2.0f,%2.0f)   %10.2f %10.2f\n",
                tx.lower(idx[0]), tx.upper(idx[0]), ty.lower(idx[1]),
                ty.upper(idx[1]), tt.lower(idx[2]), tt.upper(idx[2]),
                res.target_estimates[j], truth[j]);
  }
  return 0;
}
