/* capi_smoke.c — embeds libgeoalign_c from plain C99 (docs/embedding.md).
 *
 * Reproduces exactly what the `capi` gate's geoalign_cli invocation
 * computes (tools/ci.sh): one reference attribute whose disaggregation
 * matrix comes from the gate's crosswalk CSV, executed for the gate's
 * objective column, printed in the CLI's output format ("unit,value"
 * header, %.12g values). The gate diffs this program's stdout against
 * the CLI's — any numeric or formatting drift fails CI.
 *
 * Build (no C++ anywhere in this translation unit):
 *   cc -std=c99 -Wall -Werror capi_smoke.c -lgeoalign_c
 */
#include <stdio.h>
#include <stdlib.h>

#include "capi/geoalign_c.h"

int main(void) {
  /* Source units s1,s2,s3; target units t1,t2 (the CLI's sorted unit
   * universes for the gate's crosswalk). CSR rows are the crosswalk's
   * per-source intersections; source aggregates are the row sums. */
  static const size_t row_ptr[] = {0, 2, 4, 5};
  static const size_t col_idx[] = {0, 1, 0, 1, 1};
  static const double values[] = {1.0, 2.0, 3.0, 1.0, 4.0};
  static const double source_aggregates[] = {3.0, 4.0, 4.0};
  static const double objective[] = {10.0, 20.0, 30.0};
  static const char* target_units[] = {"t1", "t2"};

  geoalign_csr csr;
  geoalign_reference ref;
  geoalign_plan* plan = NULL;
  double target[2];
  size_t j;
  int rc;

  if (geoalign_abi_version() != GEOALIGN_ABI_VERSION) {
    fprintf(stderr, "ABI mismatch: built %u, loaded %u\n",
            (unsigned)GEOALIGN_ABI_VERSION, (unsigned)geoalign_abi_version());
    return 1;
  }

  csr.rows = 3;
  csr.cols = 2;
  csr.row_ptr = row_ptr;
  csr.col_idx = col_idx;
  csr.values = values;

  ref.name = "population";
  ref.source_aggregates = source_aggregates;
  ref.csr = &csr; /* borrowed: zero bytes copied at compile */
  ref.coo = NULL;
  ref.coo_count = 0;
  ref.coo_rows = 0;
  ref.coo_cols = 0;

  rc = geoalign_plan_compile(&ref, 1, &plan);
  if (rc != GEOALIGN_OK) {
    fprintf(stderr, "compile failed (%d): %s\n", rc, geoalign_error_message());
    return 1;
  }
  if (geoalign_plan_num_source_units(plan) != 3 ||
      geoalign_plan_num_target_units(plan) != 2 ||
      geoalign_plan_num_references(plan) != 1) {
    fprintf(stderr, "unexpected plan shape\n");
    geoalign_plan_destroy(plan);
    return 1;
  }

  rc = geoalign_plan_execute(plan, objective, 3, target, NULL);
  if (rc != GEOALIGN_OK) {
    fprintf(stderr, "execute failed (%d): %s\n", rc, geoalign_error_message());
    geoalign_plan_destroy(plan);
    return 1;
  }

  /* Same shape as io::ToCsv on the CLI's {"unit","value"} table. */
  printf("unit,value\n");
  for (j = 0; j < 2; ++j) {
    printf("%s,%.12g\n", target_units[j], target[j]);
  }

  geoalign_plan_destroy(plan);
  return 0;
}
