// The paper's Fig. 1 scenario end-to-end: a steam-consumption table
// reported by zip code and a per-capita-income table reported by
// county cannot be joined directly. The CrosswalkPipeline realigns the
// steam column to counties with GeoAlign and emits the joined table —
// the "automatic aggregate data integration" sketched in the paper's
// conclusion.
//
// Build & run:   ./build/examples/steam_income_join

#include <cstdio>

#include "common/string_util.h"
#include "core/pipeline.h"
#include "io/csv.h"
#include "linalg/stats.h"
#include "sparse/coo_builder.h"

using namespace geoalign;

namespace {

// The two agency tables, as they would arrive on disk.
constexpr const char* kSteamCsv =
    "zip,steam_consumption_mg\n"
    "10001,5946\n"
    "10002,7123\n"
    "10003,3519\n"
    "10451,2210\n"
    "10452,1874\n"
    "11201,4105\n";

constexpr const char* kIncomeCsv =
    "county,per_capita_income\n"
    "New York,62498\n"
    "Bronx,19721\n"
    "Kings,27198\n";

// The crosswalk knowledge: population counts in every zip x county
// intersection (a HUD-USPS-style relationship file).
core::ReferenceAttribute PopulationCrosswalk() {
  core::ReferenceAttribute ref;
  ref.name = "population";
  sparse::CooBuilder dm(6, 3);
  dm.Add(0, 0, 21102.0);  // 10001 -> New York
  dm.Add(1, 0, 81410.0);  // 10002 -> New York
  dm.Add(2, 0, 56024.0);  // 10003 -> New York
  dm.Add(3, 1, 42000.0);  // 10451 -> Bronx
  dm.Add(3, 0, 1500.0);   //   ... small sliver in New York county
  dm.Add(4, 1, 75000.0);  // 10452 -> Bronx
  dm.Add(5, 2, 51000.0);  // 11201 -> Kings
  ref.disaggregation = dm.Build();
  ref.source_aggregates = ref.disaggregation.RowSums();
  return ref;
}

}  // namespace

int main() {
  // Parse both agency tables.
  auto steam_table = io::ParseCsv(kSteamCsv);
  steam_table.status().CheckOK();
  auto income_table = io::ParseCsv(kIncomeCsv);
  income_table.status().CheckOK();

  auto steam =
      steam_table->KeyValueColumn("zip", "steam_consumption_mg");
  steam.status().CheckOK();
  auto income = income_table->KeyValueColumn("county", "per_capita_income");
  income.status().CheckOK();

  // Assemble the pipeline over the unit systems.
  std::vector<std::string> zips = {"10001", "10002", "10003",
                                   "10451", "10452", "11201"};
  std::vector<std::string> counties = {"New York", "Bronx", "Kings"};
  auto pipeline = core::CrosswalkPipeline::Create(
      zips, counties, {PopulationCrosswalk()});
  pipeline.status().CheckOK();

  auto rows = pipeline->Join(*steam, *income);
  rows.status().CheckOK();

  std::printf("%-10s %20s %20s\n", "county", "steam estimate (mg)",
              "per-capita income");
  linalg::Vector steam_by_county;
  linalg::Vector income_by_county;
  for (const auto& row : *rows) {
    std::printf("%-10s %20.1f %20.0f\n", row.target_unit.c_str(),
                row.objective_estimate, row.target_value);
    steam_by_county.push_back(row.objective_estimate);
    income_by_county.push_back(row.target_value);
  }
  std::printf("\ncorrelation(steam, income) across counties: %.3f\n",
              linalg::PearsonCorrelation(steam_by_county, income_by_county));

  // Export the joined table back to CSV for downstream analysis.
  io::Table out({"county", "steam_mg", "income"});
  for (const auto& row : *rows) {
    out.AppendRow({row.target_unit,
                   StrFormat("%.1f", row.objective_estimate),
                   StrFormat("%.0f", row.target_value)})
        .CheckOK();
  }
  std::printf("\njoined table as CSV:\n%s", io::ToCsv(out).c_str());
  return 0;
}
