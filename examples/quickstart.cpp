// Quickstart: crosswalk an attribute from 4 zip codes to 2 counties
// with two reference attributes. Mirrors the paper's running example
// (Fig. 4): learn weights, disaggregate, re-aggregate.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "core/geoalign.h"
#include "sparse/coo_builder.h"

using geoalign::core::CrosswalkInput;
using geoalign::core::CrosswalkResult;
using geoalign::core::GeoAlign;
using geoalign::core::ReferenceAttribute;
using geoalign::sparse::CooBuilder;

namespace {

// A reference attribute is its aggregate per zip plus its known
// zip x county disaggregation matrix (e.g. from a HUD-USPS-style
// crosswalk file). Rows must sum to the zip aggregates.
ReferenceAttribute MakePopulation() {
  ReferenceAttribute ref;
  ref.name = "population";
  CooBuilder dm(4, 2);
  dm.Add(0, 0, 21102.0);              // zip 0 entirely in county 0
  dm.Add(1, 0, 10000.0);
  dm.Add(1, 1, 15000.0);              // zip 1 straddles both counties
  dm.Add(2, 1, 56024.0);              // zip 2 entirely in county 1
  dm.Add(3, 0, 4000.0);
  dm.Add(3, 1, 1000.0);
  ref.disaggregation = dm.Build();
  ref.source_aggregates = ref.disaggregation.RowSums();
  return ref;
}

ReferenceAttribute MakeAccidents() {
  ReferenceAttribute ref;
  ref.name = "accidents";
  CooBuilder dm(4, 2);
  dm.Add(0, 0, 2.0);
  dm.Add(1, 0, 1.0);
  dm.Add(1, 1, 1.0);
  dm.Add(2, 1, 3.0);
  dm.Add(3, 0, 1.0);
  ref.disaggregation = dm.Build();
  ref.source_aggregates = ref.disaggregation.RowSums();
  return ref;
}

}  // namespace

int main() {
  CrosswalkInput input;
  // Steam consumption (mg) reported per zip code — the objective we
  // want per county.
  input.objective_source = {5946.0, 7123.0, 3519.0, 1200.0};
  input.references.push_back(MakePopulation());
  input.references.push_back(MakeAccidents());
  input.Validate().CheckOK();

  GeoAlign geoalign;
  auto result = geoalign.Crosswalk(input);
  result.status().CheckOK();
  const CrosswalkResult& res = *result;

  std::printf("learned reference weights (beta, Eq. 15):\n");
  for (size_t k = 0; k < input.references.size(); ++k) {
    std::printf("  %-12s %.4f\n", input.references[k].name.c_str(),
                res.weights[k]);
  }
  std::printf("\nestimated steam consumption per county (Eq. 17):\n");
  for (size_t j = 0; j < res.target_estimates.size(); ++j) {
    std::printf("  county %zu: %.1f mg\n", j, res.target_estimates[j]);
  }
  std::printf(
      "\nvolume preservation (Eq. 16): max row-sum error = %.2e\n",
      res.VolumePreservationError(input.objective_source));
  return 0;
}
