// 1-D aggregate interpolation (paper Fig. 3): realign a population
// histogram from narrow age bins to incompatible wide age bins. The
// same GeoAlign core runs unchanged — only the overlay that produces
// intersection units is 1-D.
//
// Build & run:   ./build/examples/histogram_realign

#include <cstdio>

#include "core/dasymetric.h"
#include "core/geoalign.h"
#include "partition/interval_partition.h"
#include "partition/overlay.h"
#include "sparse/coo_builder.h"

using namespace geoalign;

int main() {
  // Source: population counts in narrow age bins.
  auto narrow = partition::IntervalPartition::Create(
      {0, 5, 10, 15, 20, 25, 30, 40, 50, 65, 85});
  narrow.status().CheckOK();
  linalg::Vector population = {4800, 5100, 5000, 5300, 6100,
                               6800, 13000, 11500, 14200, 9100};

  // Target: the wide bins another agency reports on.
  auto wide = partition::IntervalPartition::Create({0, 18, 35, 60, 85});
  wide.status().CheckOK();

  // Intersection units and the width (measure) disaggregation matrix.
  auto overlay = partition::OverlayIntervals(*narrow, *wide);
  overlay.status().CheckOK();

  // Reference 1: interval width (the homogeneity assumption).
  core::ReferenceAttribute width;
  width.name = "bin width";
  width.disaggregation = overlay->MeasureDm();
  width.source_aggregates = width.disaggregation.RowSums();

  // Reference 2: a fine-grained school-enrollment attribute whose
  // true split across the intersection units is known — younger-
  // skewed, so it captures where within a bin the people sit.
  core::ReferenceAttribute enrollment;
  enrollment.name = "school enrollment";
  {
    sparse::CooBuilder dm(narrow->NumUnits(), wide->NumUnits());
    // Enrollment mass per intersection unit (toy numbers, youngest
    // bins heaviest; bin [15,20) splits 3:2 toward [0,18)).
    dm.Add(0, 0, 900.0);
    dm.Add(1, 0, 4200.0);
    dm.Add(2, 0, 4900.0);
    dm.Add(3, 0, 2900.0);   // [15,18) share of [15,20)
    dm.Add(3, 1, 1400.0);   // [18,20) share
    dm.Add(4, 1, 2600.0);
    dm.Add(5, 1, 700.0);
    dm.Add(6, 1, 300.0);
    dm.Add(6, 2, 150.0);
    dm.Add(7, 2, 90.0);
    dm.Add(8, 2, 60.0);
    dm.Add(8, 3, 20.0);
    dm.Add(9, 3, 10.0);
    enrollment.disaggregation = dm.Build();
    enrollment.source_aggregates = enrollment.disaggregation.RowSums();
  }

  core::CrosswalkInput input;
  input.objective_source = population;
  input.references.push_back(width);
  input.references.push_back(enrollment);
  input.Validate().CheckOK();

  core::GeoAlign geoalign;
  auto res = geoalign.Crosswalk(input);
  res.status().CheckOK();

  std::printf("age histogram realigned to wide bins:\n");
  std::printf("%-10s %12s\n", "age bin", "population");
  for (size_t j = 0; j < wide->NumUnits(); ++j) {
    std::printf("[%2.0f, %2.0f)  %12.0f\n", wide->lower(j), wide->upper(j),
                res->target_estimates[j]);
  }
  std::printf("\nlearned weights: width=%.3f, enrollment=%.3f\n",
              res->weights[0], res->weights[1]);
  std::printf("total preserved: %.0f of %.0f\n",
              linalg::Sum(res->target_estimates), linalg::Sum(population));
  return 0;
}
