file(REMOVE_RECURSE
  "CMakeFiles/geoalign_cli.dir/geoalign_cli.cc.o"
  "CMakeFiles/geoalign_cli.dir/geoalign_cli.cc.o.d"
  "geoalign_cli"
  "geoalign_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoalign_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
