# Empty compiler generated dependencies file for geoalign_cli.
# This may be replaced when dependencies are built.
