# Empty dependencies file for geojson_crosswalk.
# This may be replaced when dependencies are built.
