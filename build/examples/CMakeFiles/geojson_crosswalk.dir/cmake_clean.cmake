file(REMOVE_RECURSE
  "CMakeFiles/geojson_crosswalk.dir/geojson_crosswalk.cpp.o"
  "CMakeFiles/geojson_crosswalk.dir/geojson_crosswalk.cpp.o.d"
  "geojson_crosswalk"
  "geojson_crosswalk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geojson_crosswalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
