file(REMOVE_RECURSE
  "CMakeFiles/polygon_overlay.dir/polygon_overlay.cpp.o"
  "CMakeFiles/polygon_overlay.dir/polygon_overlay.cpp.o.d"
  "polygon_overlay"
  "polygon_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polygon_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
