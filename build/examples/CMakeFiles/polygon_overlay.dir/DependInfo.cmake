
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/polygon_overlay.cpp" "examples/CMakeFiles/polygon_overlay.dir/polygon_overlay.cpp.o" "gcc" "examples/CMakeFiles/polygon_overlay.dir/polygon_overlay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geoalign_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
