# Empty dependencies file for polygon_overlay.
# This may be replaced when dependencies are built.
