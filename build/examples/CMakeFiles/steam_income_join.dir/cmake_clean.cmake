file(REMOVE_RECURSE
  "CMakeFiles/steam_income_join.dir/steam_income_join.cpp.o"
  "CMakeFiles/steam_income_join.dir/steam_income_join.cpp.o.d"
  "steam_income_join"
  "steam_income_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steam_income_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
