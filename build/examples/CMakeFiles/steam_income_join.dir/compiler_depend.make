# Empty compiler generated dependencies file for steam_income_join.
# This may be replaced when dependencies are built.
