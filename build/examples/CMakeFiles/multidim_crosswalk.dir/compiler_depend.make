# Empty compiler generated dependencies file for multidim_crosswalk.
# This may be replaced when dependencies are built.
