file(REMOVE_RECURSE
  "CMakeFiles/multidim_crosswalk.dir/multidim_crosswalk.cpp.o"
  "CMakeFiles/multidim_crosswalk.dir/multidim_crosswalk.cpp.o.d"
  "multidim_crosswalk"
  "multidim_crosswalk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidim_crosswalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
