file(REMOVE_RECURSE
  "CMakeFiles/histogram_realign.dir/histogram_realign.cpp.o"
  "CMakeFiles/histogram_realign.dir/histogram_realign.cpp.o.d"
  "histogram_realign"
  "histogram_realign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram_realign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
