# Empty dependencies file for histogram_realign.
# This may be replaced when dependencies are built.
