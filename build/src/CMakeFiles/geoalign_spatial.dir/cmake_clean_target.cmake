file(REMOVE_RECURSE
  "libgeoalign_spatial.a"
)
