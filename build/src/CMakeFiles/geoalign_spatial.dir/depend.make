# Empty dependencies file for geoalign_spatial.
# This may be replaced when dependencies are built.
