file(REMOVE_RECURSE
  "CMakeFiles/geoalign_spatial.dir/spatial/grid_index.cc.o"
  "CMakeFiles/geoalign_spatial.dir/spatial/grid_index.cc.o.d"
  "CMakeFiles/geoalign_spatial.dir/spatial/rtree.cc.o"
  "CMakeFiles/geoalign_spatial.dir/spatial/rtree.cc.o.d"
  "libgeoalign_spatial.a"
  "libgeoalign_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoalign_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
