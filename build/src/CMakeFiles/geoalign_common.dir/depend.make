# Empty dependencies file for geoalign_common.
# This may be replaced when dependencies are built.
