file(REMOVE_RECURSE
  "libgeoalign_common.a"
)
