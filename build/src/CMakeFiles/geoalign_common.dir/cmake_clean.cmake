file(REMOVE_RECURSE
  "CMakeFiles/geoalign_common.dir/common/logging.cc.o"
  "CMakeFiles/geoalign_common.dir/common/logging.cc.o.d"
  "CMakeFiles/geoalign_common.dir/common/random.cc.o"
  "CMakeFiles/geoalign_common.dir/common/random.cc.o.d"
  "CMakeFiles/geoalign_common.dir/common/status.cc.o"
  "CMakeFiles/geoalign_common.dir/common/status.cc.o.d"
  "CMakeFiles/geoalign_common.dir/common/stopwatch.cc.o"
  "CMakeFiles/geoalign_common.dir/common/stopwatch.cc.o.d"
  "CMakeFiles/geoalign_common.dir/common/string_util.cc.o"
  "CMakeFiles/geoalign_common.dir/common/string_util.cc.o.d"
  "libgeoalign_common.a"
  "libgeoalign_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoalign_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
