file(REMOVE_RECURSE
  "CMakeFiles/geoalign_linalg.dir/linalg/cholesky.cc.o"
  "CMakeFiles/geoalign_linalg.dir/linalg/cholesky.cc.o.d"
  "CMakeFiles/geoalign_linalg.dir/linalg/lu.cc.o"
  "CMakeFiles/geoalign_linalg.dir/linalg/lu.cc.o.d"
  "CMakeFiles/geoalign_linalg.dir/linalg/matrix.cc.o"
  "CMakeFiles/geoalign_linalg.dir/linalg/matrix.cc.o.d"
  "CMakeFiles/geoalign_linalg.dir/linalg/nnls.cc.o"
  "CMakeFiles/geoalign_linalg.dir/linalg/nnls.cc.o.d"
  "CMakeFiles/geoalign_linalg.dir/linalg/qr.cc.o"
  "CMakeFiles/geoalign_linalg.dir/linalg/qr.cc.o.d"
  "CMakeFiles/geoalign_linalg.dir/linalg/simplex_ls.cc.o"
  "CMakeFiles/geoalign_linalg.dir/linalg/simplex_ls.cc.o.d"
  "CMakeFiles/geoalign_linalg.dir/linalg/stats.cc.o"
  "CMakeFiles/geoalign_linalg.dir/linalg/stats.cc.o.d"
  "CMakeFiles/geoalign_linalg.dir/linalg/vector_ops.cc.o"
  "CMakeFiles/geoalign_linalg.dir/linalg/vector_ops.cc.o.d"
  "libgeoalign_linalg.a"
  "libgeoalign_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoalign_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
