# Empty dependencies file for geoalign_linalg.
# This may be replaced when dependencies are built.
