
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cholesky.cc" "src/CMakeFiles/geoalign_linalg.dir/linalg/cholesky.cc.o" "gcc" "src/CMakeFiles/geoalign_linalg.dir/linalg/cholesky.cc.o.d"
  "/root/repo/src/linalg/lu.cc" "src/CMakeFiles/geoalign_linalg.dir/linalg/lu.cc.o" "gcc" "src/CMakeFiles/geoalign_linalg.dir/linalg/lu.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/geoalign_linalg.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/geoalign_linalg.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/nnls.cc" "src/CMakeFiles/geoalign_linalg.dir/linalg/nnls.cc.o" "gcc" "src/CMakeFiles/geoalign_linalg.dir/linalg/nnls.cc.o.d"
  "/root/repo/src/linalg/qr.cc" "src/CMakeFiles/geoalign_linalg.dir/linalg/qr.cc.o" "gcc" "src/CMakeFiles/geoalign_linalg.dir/linalg/qr.cc.o.d"
  "/root/repo/src/linalg/simplex_ls.cc" "src/CMakeFiles/geoalign_linalg.dir/linalg/simplex_ls.cc.o" "gcc" "src/CMakeFiles/geoalign_linalg.dir/linalg/simplex_ls.cc.o.d"
  "/root/repo/src/linalg/stats.cc" "src/CMakeFiles/geoalign_linalg.dir/linalg/stats.cc.o" "gcc" "src/CMakeFiles/geoalign_linalg.dir/linalg/stats.cc.o.d"
  "/root/repo/src/linalg/vector_ops.cc" "src/CMakeFiles/geoalign_linalg.dir/linalg/vector_ops.cc.o" "gcc" "src/CMakeFiles/geoalign_linalg.dir/linalg/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geoalign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
