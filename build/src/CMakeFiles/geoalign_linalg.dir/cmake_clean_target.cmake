file(REMOVE_RECURSE
  "libgeoalign_linalg.a"
)
