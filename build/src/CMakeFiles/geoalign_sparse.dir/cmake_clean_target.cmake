file(REMOVE_RECURSE
  "libgeoalign_sparse.a"
)
