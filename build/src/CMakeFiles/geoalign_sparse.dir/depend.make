# Empty dependencies file for geoalign_sparse.
# This may be replaced when dependencies are built.
