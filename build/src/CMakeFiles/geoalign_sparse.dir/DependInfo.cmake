
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/coo_builder.cc" "src/CMakeFiles/geoalign_sparse.dir/sparse/coo_builder.cc.o" "gcc" "src/CMakeFiles/geoalign_sparse.dir/sparse/coo_builder.cc.o.d"
  "/root/repo/src/sparse/csr_matrix.cc" "src/CMakeFiles/geoalign_sparse.dir/sparse/csr_matrix.cc.o" "gcc" "src/CMakeFiles/geoalign_sparse.dir/sparse/csr_matrix.cc.o.d"
  "/root/repo/src/sparse/sparse_ops.cc" "src/CMakeFiles/geoalign_sparse.dir/sparse/sparse_ops.cc.o" "gcc" "src/CMakeFiles/geoalign_sparse.dir/sparse/sparse_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geoalign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
