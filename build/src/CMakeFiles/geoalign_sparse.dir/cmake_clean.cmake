file(REMOVE_RECURSE
  "CMakeFiles/geoalign_sparse.dir/sparse/coo_builder.cc.o"
  "CMakeFiles/geoalign_sparse.dir/sparse/coo_builder.cc.o.d"
  "CMakeFiles/geoalign_sparse.dir/sparse/csr_matrix.cc.o"
  "CMakeFiles/geoalign_sparse.dir/sparse/csr_matrix.cc.o.d"
  "CMakeFiles/geoalign_sparse.dir/sparse/sparse_ops.cc.o"
  "CMakeFiles/geoalign_sparse.dir/sparse/sparse_ops.cc.o.d"
  "libgeoalign_sparse.a"
  "libgeoalign_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoalign_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
