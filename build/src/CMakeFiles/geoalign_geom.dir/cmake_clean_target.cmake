file(REMOVE_RECURSE
  "libgeoalign_geom.a"
)
