
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/bbox.cc" "src/CMakeFiles/geoalign_geom.dir/geom/bbox.cc.o" "gcc" "src/CMakeFiles/geoalign_geom.dir/geom/bbox.cc.o.d"
  "/root/repo/src/geom/boolean_ops.cc" "src/CMakeFiles/geoalign_geom.dir/geom/boolean_ops.cc.o" "gcc" "src/CMakeFiles/geoalign_geom.dir/geom/boolean_ops.cc.o.d"
  "/root/repo/src/geom/clip_polygon.cc" "src/CMakeFiles/geoalign_geom.dir/geom/clip_polygon.cc.o" "gcc" "src/CMakeFiles/geoalign_geom.dir/geom/clip_polygon.cc.o.d"
  "/root/repo/src/geom/convex_clip.cc" "src/CMakeFiles/geoalign_geom.dir/geom/convex_clip.cc.o" "gcc" "src/CMakeFiles/geoalign_geom.dir/geom/convex_clip.cc.o.d"
  "/root/repo/src/geom/hull.cc" "src/CMakeFiles/geoalign_geom.dir/geom/hull.cc.o" "gcc" "src/CMakeFiles/geoalign_geom.dir/geom/hull.cc.o.d"
  "/root/repo/src/geom/point.cc" "src/CMakeFiles/geoalign_geom.dir/geom/point.cc.o" "gcc" "src/CMakeFiles/geoalign_geom.dir/geom/point.cc.o.d"
  "/root/repo/src/geom/polygon.cc" "src/CMakeFiles/geoalign_geom.dir/geom/polygon.cc.o" "gcc" "src/CMakeFiles/geoalign_geom.dir/geom/polygon.cc.o.d"
  "/root/repo/src/geom/predicates.cc" "src/CMakeFiles/geoalign_geom.dir/geom/predicates.cc.o" "gcc" "src/CMakeFiles/geoalign_geom.dir/geom/predicates.cc.o.d"
  "/root/repo/src/geom/voronoi.cc" "src/CMakeFiles/geoalign_geom.dir/geom/voronoi.cc.o" "gcc" "src/CMakeFiles/geoalign_geom.dir/geom/voronoi.cc.o.d"
  "/root/repo/src/geom/wkt.cc" "src/CMakeFiles/geoalign_geom.dir/geom/wkt.cc.o" "gcc" "src/CMakeFiles/geoalign_geom.dir/geom/wkt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geoalign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
