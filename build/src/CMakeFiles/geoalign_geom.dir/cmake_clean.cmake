file(REMOVE_RECURSE
  "CMakeFiles/geoalign_geom.dir/geom/bbox.cc.o"
  "CMakeFiles/geoalign_geom.dir/geom/bbox.cc.o.d"
  "CMakeFiles/geoalign_geom.dir/geom/boolean_ops.cc.o"
  "CMakeFiles/geoalign_geom.dir/geom/boolean_ops.cc.o.d"
  "CMakeFiles/geoalign_geom.dir/geom/clip_polygon.cc.o"
  "CMakeFiles/geoalign_geom.dir/geom/clip_polygon.cc.o.d"
  "CMakeFiles/geoalign_geom.dir/geom/convex_clip.cc.o"
  "CMakeFiles/geoalign_geom.dir/geom/convex_clip.cc.o.d"
  "CMakeFiles/geoalign_geom.dir/geom/hull.cc.o"
  "CMakeFiles/geoalign_geom.dir/geom/hull.cc.o.d"
  "CMakeFiles/geoalign_geom.dir/geom/point.cc.o"
  "CMakeFiles/geoalign_geom.dir/geom/point.cc.o.d"
  "CMakeFiles/geoalign_geom.dir/geom/polygon.cc.o"
  "CMakeFiles/geoalign_geom.dir/geom/polygon.cc.o.d"
  "CMakeFiles/geoalign_geom.dir/geom/predicates.cc.o"
  "CMakeFiles/geoalign_geom.dir/geom/predicates.cc.o.d"
  "CMakeFiles/geoalign_geom.dir/geom/voronoi.cc.o"
  "CMakeFiles/geoalign_geom.dir/geom/voronoi.cc.o.d"
  "CMakeFiles/geoalign_geom.dir/geom/wkt.cc.o"
  "CMakeFiles/geoalign_geom.dir/geom/wkt.cc.o.d"
  "libgeoalign_geom.a"
  "libgeoalign_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoalign_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
