# Empty dependencies file for geoalign_geom.
# This may be replaced when dependencies are built.
