
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/crosswalk_io.cc" "src/CMakeFiles/geoalign_io.dir/io/crosswalk_io.cc.o" "gcc" "src/CMakeFiles/geoalign_io.dir/io/crosswalk_io.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/CMakeFiles/geoalign_io.dir/io/csv.cc.o" "gcc" "src/CMakeFiles/geoalign_io.dir/io/csv.cc.o.d"
  "/root/repo/src/io/geojson.cc" "src/CMakeFiles/geoalign_io.dir/io/geojson.cc.o" "gcc" "src/CMakeFiles/geoalign_io.dir/io/geojson.cc.o.d"
  "/root/repo/src/io/json.cc" "src/CMakeFiles/geoalign_io.dir/io/json.cc.o" "gcc" "src/CMakeFiles/geoalign_io.dir/io/json.cc.o.d"
  "/root/repo/src/io/table.cc" "src/CMakeFiles/geoalign_io.dir/io/table.cc.o" "gcc" "src/CMakeFiles/geoalign_io.dir/io/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geoalign_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_spatial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
