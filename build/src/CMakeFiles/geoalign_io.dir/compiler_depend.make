# Empty compiler generated dependencies file for geoalign_io.
# This may be replaced when dependencies are built.
