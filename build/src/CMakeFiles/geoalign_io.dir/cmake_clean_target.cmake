file(REMOVE_RECURSE
  "libgeoalign_io.a"
)
