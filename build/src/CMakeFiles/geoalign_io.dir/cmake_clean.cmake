file(REMOVE_RECURSE
  "CMakeFiles/geoalign_io.dir/io/crosswalk_io.cc.o"
  "CMakeFiles/geoalign_io.dir/io/crosswalk_io.cc.o.d"
  "CMakeFiles/geoalign_io.dir/io/csv.cc.o"
  "CMakeFiles/geoalign_io.dir/io/csv.cc.o.d"
  "CMakeFiles/geoalign_io.dir/io/geojson.cc.o"
  "CMakeFiles/geoalign_io.dir/io/geojson.cc.o.d"
  "CMakeFiles/geoalign_io.dir/io/json.cc.o"
  "CMakeFiles/geoalign_io.dir/io/json.cc.o.d"
  "CMakeFiles/geoalign_io.dir/io/table.cc.o"
  "CMakeFiles/geoalign_io.dir/io/table.cc.o.d"
  "libgeoalign_io.a"
  "libgeoalign_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoalign_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
