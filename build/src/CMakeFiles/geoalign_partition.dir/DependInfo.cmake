
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/box_partition.cc" "src/CMakeFiles/geoalign_partition.dir/partition/box_partition.cc.o" "gcc" "src/CMakeFiles/geoalign_partition.dir/partition/box_partition.cc.o.d"
  "/root/repo/src/partition/cell_partition.cc" "src/CMakeFiles/geoalign_partition.dir/partition/cell_partition.cc.o" "gcc" "src/CMakeFiles/geoalign_partition.dir/partition/cell_partition.cc.o.d"
  "/root/repo/src/partition/disaggregation.cc" "src/CMakeFiles/geoalign_partition.dir/partition/disaggregation.cc.o" "gcc" "src/CMakeFiles/geoalign_partition.dir/partition/disaggregation.cc.o.d"
  "/root/repo/src/partition/interval_partition.cc" "src/CMakeFiles/geoalign_partition.dir/partition/interval_partition.cc.o" "gcc" "src/CMakeFiles/geoalign_partition.dir/partition/interval_partition.cc.o.d"
  "/root/repo/src/partition/overlay.cc" "src/CMakeFiles/geoalign_partition.dir/partition/overlay.cc.o" "gcc" "src/CMakeFiles/geoalign_partition.dir/partition/overlay.cc.o.d"
  "/root/repo/src/partition/polygon_partition.cc" "src/CMakeFiles/geoalign_partition.dir/partition/polygon_partition.cc.o" "gcc" "src/CMakeFiles/geoalign_partition.dir/partition/polygon_partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geoalign_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
