file(REMOVE_RECURSE
  "CMakeFiles/geoalign_partition.dir/partition/box_partition.cc.o"
  "CMakeFiles/geoalign_partition.dir/partition/box_partition.cc.o.d"
  "CMakeFiles/geoalign_partition.dir/partition/cell_partition.cc.o"
  "CMakeFiles/geoalign_partition.dir/partition/cell_partition.cc.o.d"
  "CMakeFiles/geoalign_partition.dir/partition/disaggregation.cc.o"
  "CMakeFiles/geoalign_partition.dir/partition/disaggregation.cc.o.d"
  "CMakeFiles/geoalign_partition.dir/partition/interval_partition.cc.o"
  "CMakeFiles/geoalign_partition.dir/partition/interval_partition.cc.o.d"
  "CMakeFiles/geoalign_partition.dir/partition/overlay.cc.o"
  "CMakeFiles/geoalign_partition.dir/partition/overlay.cc.o.d"
  "CMakeFiles/geoalign_partition.dir/partition/polygon_partition.cc.o"
  "CMakeFiles/geoalign_partition.dir/partition/polygon_partition.cc.o.d"
  "libgeoalign_partition.a"
  "libgeoalign_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoalign_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
