file(REMOVE_RECURSE
  "libgeoalign_partition.a"
)
