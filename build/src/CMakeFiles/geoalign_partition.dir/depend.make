# Empty dependencies file for geoalign_partition.
# This may be replaced when dependencies are built.
