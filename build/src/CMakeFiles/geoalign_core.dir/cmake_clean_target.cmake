file(REMOVE_RECURSE
  "libgeoalign_core.a"
)
