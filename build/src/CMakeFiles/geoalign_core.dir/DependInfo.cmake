
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/areal_weighting.cc" "src/CMakeFiles/geoalign_core.dir/core/areal_weighting.cc.o" "gcc" "src/CMakeFiles/geoalign_core.dir/core/areal_weighting.cc.o.d"
  "/root/repo/src/core/batch.cc" "src/CMakeFiles/geoalign_core.dir/core/batch.cc.o" "gcc" "src/CMakeFiles/geoalign_core.dir/core/batch.cc.o.d"
  "/root/repo/src/core/crosswalk_input.cc" "src/CMakeFiles/geoalign_core.dir/core/crosswalk_input.cc.o" "gcc" "src/CMakeFiles/geoalign_core.dir/core/crosswalk_input.cc.o.d"
  "/root/repo/src/core/dasymetric.cc" "src/CMakeFiles/geoalign_core.dir/core/dasymetric.cc.o" "gcc" "src/CMakeFiles/geoalign_core.dir/core/dasymetric.cc.o.d"
  "/root/repo/src/core/geoalign.cc" "src/CMakeFiles/geoalign_core.dir/core/geoalign.cc.o" "gcc" "src/CMakeFiles/geoalign_core.dir/core/geoalign.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/geoalign_core.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/geoalign_core.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/pycnophylactic.cc" "src/CMakeFiles/geoalign_core.dir/core/pycnophylactic.cc.o" "gcc" "src/CMakeFiles/geoalign_core.dir/core/pycnophylactic.cc.o.d"
  "/root/repo/src/core/regression.cc" "src/CMakeFiles/geoalign_core.dir/core/regression.cc.o" "gcc" "src/CMakeFiles/geoalign_core.dir/core/regression.cc.o.d"
  "/root/repo/src/core/three_class_dasymetric.cc" "src/CMakeFiles/geoalign_core.dir/core/three_class_dasymetric.cc.o" "gcc" "src/CMakeFiles/geoalign_core.dir/core/three_class_dasymetric.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geoalign_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
