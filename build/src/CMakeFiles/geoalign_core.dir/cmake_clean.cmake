file(REMOVE_RECURSE
  "CMakeFiles/geoalign_core.dir/core/areal_weighting.cc.o"
  "CMakeFiles/geoalign_core.dir/core/areal_weighting.cc.o.d"
  "CMakeFiles/geoalign_core.dir/core/batch.cc.o"
  "CMakeFiles/geoalign_core.dir/core/batch.cc.o.d"
  "CMakeFiles/geoalign_core.dir/core/crosswalk_input.cc.o"
  "CMakeFiles/geoalign_core.dir/core/crosswalk_input.cc.o.d"
  "CMakeFiles/geoalign_core.dir/core/dasymetric.cc.o"
  "CMakeFiles/geoalign_core.dir/core/dasymetric.cc.o.d"
  "CMakeFiles/geoalign_core.dir/core/geoalign.cc.o"
  "CMakeFiles/geoalign_core.dir/core/geoalign.cc.o.d"
  "CMakeFiles/geoalign_core.dir/core/pipeline.cc.o"
  "CMakeFiles/geoalign_core.dir/core/pipeline.cc.o.d"
  "CMakeFiles/geoalign_core.dir/core/pycnophylactic.cc.o"
  "CMakeFiles/geoalign_core.dir/core/pycnophylactic.cc.o.d"
  "CMakeFiles/geoalign_core.dir/core/regression.cc.o"
  "CMakeFiles/geoalign_core.dir/core/regression.cc.o.d"
  "CMakeFiles/geoalign_core.dir/core/three_class_dasymetric.cc.o"
  "CMakeFiles/geoalign_core.dir/core/three_class_dasymetric.cc.o.d"
  "libgeoalign_core.a"
  "libgeoalign_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoalign_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
