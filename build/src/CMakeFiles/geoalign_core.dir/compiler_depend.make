# Empty compiler generated dependencies file for geoalign_core.
# This may be replaced when dependencies are built.
