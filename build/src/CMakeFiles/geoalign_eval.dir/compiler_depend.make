# Empty compiler generated dependencies file for geoalign_eval.
# This may be replaced when dependencies are built.
