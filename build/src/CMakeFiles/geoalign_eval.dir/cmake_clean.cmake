file(REMOVE_RECURSE
  "CMakeFiles/geoalign_eval.dir/eval/cross_validation.cc.o"
  "CMakeFiles/geoalign_eval.dir/eval/cross_validation.cc.o.d"
  "CMakeFiles/geoalign_eval.dir/eval/dm_metrics.cc.o"
  "CMakeFiles/geoalign_eval.dir/eval/dm_metrics.cc.o.d"
  "CMakeFiles/geoalign_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/geoalign_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/geoalign_eval.dir/eval/noise.cc.o"
  "CMakeFiles/geoalign_eval.dir/eval/noise.cc.o.d"
  "CMakeFiles/geoalign_eval.dir/eval/noise_experiment.cc.o"
  "CMakeFiles/geoalign_eval.dir/eval/noise_experiment.cc.o.d"
  "CMakeFiles/geoalign_eval.dir/eval/reference_selection.cc.o"
  "CMakeFiles/geoalign_eval.dir/eval/reference_selection.cc.o.d"
  "CMakeFiles/geoalign_eval.dir/eval/report.cc.o"
  "CMakeFiles/geoalign_eval.dir/eval/report.cc.o.d"
  "libgeoalign_eval.a"
  "libgeoalign_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoalign_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
