file(REMOVE_RECURSE
  "libgeoalign_eval.a"
)
