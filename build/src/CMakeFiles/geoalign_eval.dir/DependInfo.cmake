
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/cross_validation.cc" "src/CMakeFiles/geoalign_eval.dir/eval/cross_validation.cc.o" "gcc" "src/CMakeFiles/geoalign_eval.dir/eval/cross_validation.cc.o.d"
  "/root/repo/src/eval/dm_metrics.cc" "src/CMakeFiles/geoalign_eval.dir/eval/dm_metrics.cc.o" "gcc" "src/CMakeFiles/geoalign_eval.dir/eval/dm_metrics.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/geoalign_eval.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/geoalign_eval.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/noise.cc" "src/CMakeFiles/geoalign_eval.dir/eval/noise.cc.o" "gcc" "src/CMakeFiles/geoalign_eval.dir/eval/noise.cc.o.d"
  "/root/repo/src/eval/noise_experiment.cc" "src/CMakeFiles/geoalign_eval.dir/eval/noise_experiment.cc.o" "gcc" "src/CMakeFiles/geoalign_eval.dir/eval/noise_experiment.cc.o.d"
  "/root/repo/src/eval/reference_selection.cc" "src/CMakeFiles/geoalign_eval.dir/eval/reference_selection.cc.o" "gcc" "src/CMakeFiles/geoalign_eval.dir/eval/reference_selection.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/geoalign_eval.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/geoalign_eval.dir/eval/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geoalign_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
