file(REMOVE_RECURSE
  "libgeoalign_synth.a"
)
