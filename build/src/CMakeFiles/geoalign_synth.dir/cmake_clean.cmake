file(REMOVE_RECURSE
  "CMakeFiles/geoalign_synth.dir/synth/dataset_suite.cc.o"
  "CMakeFiles/geoalign_synth.dir/synth/dataset_suite.cc.o.d"
  "CMakeFiles/geoalign_synth.dir/synth/geography.cc.o"
  "CMakeFiles/geoalign_synth.dir/synth/geography.cc.o.d"
  "CMakeFiles/geoalign_synth.dir/synth/geometric_universe.cc.o"
  "CMakeFiles/geoalign_synth.dir/synth/geometric_universe.cc.o.d"
  "CMakeFiles/geoalign_synth.dir/synth/point_process.cc.o"
  "CMakeFiles/geoalign_synth.dir/synth/point_process.cc.o.d"
  "CMakeFiles/geoalign_synth.dir/synth/universe.cc.o"
  "CMakeFiles/geoalign_synth.dir/synth/universe.cc.o.d"
  "libgeoalign_synth.a"
  "libgeoalign_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoalign_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
