# Empty dependencies file for geoalign_synth.
# This may be replaced when dependencies are built.
