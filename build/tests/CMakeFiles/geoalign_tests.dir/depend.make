# Empty dependencies file for geoalign_tests.
# This may be replaced when dependencies are built.
