
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/batch_and_geometric_test.cc" "tests/CMakeFiles/geoalign_tests.dir/batch_and_geometric_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/batch_and_geometric_test.cc.o.d"
  "/root/repo/tests/cli_test.cc" "tests/CMakeFiles/geoalign_tests.dir/cli_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/cli_test.cc.o.d"
  "/root/repo/tests/clip_polygon_test.cc" "tests/CMakeFiles/geoalign_tests.dir/clip_polygon_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/clip_polygon_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/geoalign_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_property_test.cc" "tests/CMakeFiles/geoalign_tests.dir/core_property_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/core_property_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/geoalign_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/coverage_gaps_test.cc" "tests/CMakeFiles/geoalign_tests.dir/coverage_gaps_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/coverage_gaps_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/geoalign_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/geom_test.cc" "tests/CMakeFiles/geoalign_tests.dir/geom_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/geom_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/geoalign_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/io_extended_test.cc" "tests/CMakeFiles/geoalign_tests.dir/io_extended_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/io_extended_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/geoalign_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/linalg_test.cc" "tests/CMakeFiles/geoalign_tests.dir/linalg_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/linalg_test.cc.o.d"
  "/root/repo/tests/methods_test.cc" "tests/CMakeFiles/geoalign_tests.dir/methods_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/methods_test.cc.o.d"
  "/root/repo/tests/overlay_property_test.cc" "tests/CMakeFiles/geoalign_tests.dir/overlay_property_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/overlay_property_test.cc.o.d"
  "/root/repo/tests/partition_test.cc" "tests/CMakeFiles/geoalign_tests.dir/partition_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/partition_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/geoalign_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/smoke_test.cc" "tests/CMakeFiles/geoalign_tests.dir/smoke_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/smoke_test.cc.o.d"
  "/root/repo/tests/sparse_test.cc" "tests/CMakeFiles/geoalign_tests.dir/sparse_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/sparse_test.cc.o.d"
  "/root/repo/tests/spatial_test.cc" "tests/CMakeFiles/geoalign_tests.dir/spatial_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/spatial_test.cc.o.d"
  "/root/repo/tests/synth_test.cc" "tests/CMakeFiles/geoalign_tests.dir/synth_test.cc.o" "gcc" "tests/CMakeFiles/geoalign_tests.dir/synth_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geoalign_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/geoalign_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
