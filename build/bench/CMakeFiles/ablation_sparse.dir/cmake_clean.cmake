file(REMOVE_RECURSE
  "CMakeFiles/ablation_sparse.dir/ablation_sparse.cc.o"
  "CMakeFiles/ablation_sparse.dir/ablation_sparse.cc.o.d"
  "ablation_sparse"
  "ablation_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
