file(REMOVE_RECURSE
  "CMakeFiles/fig8_references.dir/fig8_references.cc.o"
  "CMakeFiles/fig8_references.dir/fig8_references.cc.o.d"
  "fig8_references"
  "fig8_references.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_references.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
