# Empty compiler generated dependencies file for fig8_references.
# This may be replaced when dependencies are built.
