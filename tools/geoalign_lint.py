#!/usr/bin/env python3
"""Project-specific correctness lints for the GeoAlign tree.

Machine-checks the three contracts the compiler cannot (fully) see,
documented in docs/static_analysis.md:

  geoalign-unordered-iteration
      No iteration over std::unordered_map / std::unordered_set inside
      the kernel subsystems (src/sparse, src/core, src/linalg).
      Unordered iteration order varies across standard libraries and
      hash seeds, so a reduction that walks one inside Eq. 14/17 would
      silently break the bit-identical-across-thread-counts guarantee.
      Lookups and inserts are fine; walking the container is not.

  geoalign-float-eq
      No raw == / != against floating-point literals in library code.
      Deliberate exact comparisons (sparsity checks, the "otherwise 0"
      branch of Eq. 14) must go through ExactlyZero / ExactlyEqual in
      src/common/float_eq.h so the intent is named and auditable.

  geoalign-no-throw
      No `throw` in library code: fallible functions return Status /
      Result<T> (src/common/status.h); programming errors abort via
      GEOALIGN_CHECK. Exceptions would bypass both contracts.

  geoalign-discarded-status
      No statement-level call to a Status / Result-returning function
      whose value is discarded. Mirrors the [[nodiscard]] attribute for
      build configurations that demote warnings, and catches discards
      hidden from the compiler (e.g. behind (void)).

  geoalign-plan-bypass
      No calls to the legacy recompile-per-call crosswalk entry points
      (`*.Crosswalk(...)` / `CrosswalkUncompiled(...)`) inside the
      serving hot paths (src/core/pipeline.*, src/core/batch.*,
      src/eval/). Since the compile/execute split these paths must go
      through a compiled CrosswalkPlan (optionally via PlanCache) so
      objective-independent work is hoisted once; a per-call Crosswalk
      silently recompiles everything per objective. Legitimate uses —
      baseline interpolators without a plan form, freshly perturbed
      references — carry a NOLINT with a rationale.

  geoalign-raw-clock
      No raw `std::chrono::*_clock::now()` in library code (src/)
      outside src/obs/. Time reads must go through the obs timing
      primitives (obs::NowTicks, obs::Stopwatch, obs::PhaseTimer,
      GEOALIGN_TRACE_SPAN) so the whole tree shares one steady_clock
      policy and timing shows up in the telemetry exports instead of in
      ad-hoc locals. See docs/observability.md.

  geoalign-hot-alloc
      No heap allocation inside a marked hot loop in src/sparse/,
      src/partition/, or src/geom/: between `GEOALIGN_HOT_LOOP_BEGIN`
      and `GEOALIGN_HOT_LOOP_END` comment markers, `std::vector`
      construction, growth calls (push_back / emplace_back / resize /
      reserve / insert / assign / clear-and-regrow patterns), and bare
      `new` are flagged. The fused execute kernel
      (sparse/fused_execute.cc) and the geometric overlay engine
      (partition/overlay.cc + the geom clipping path under it) promise
      zero hot-path heap allocations — every buffer comes preallocated
      from a workspace Prepare — and this rule machine-checks that
      promise. A growth call whose capacity is provably reserved
      carries a NOLINT with the rationale.

  geoalign-raw-intrinsic
      No raw SIMD intrinsics in library code (src/) outside
      src/sparse/simd/: `#include <immintrin.h>` / `<arm_neon.h>` /
      `<x86intrin.h>`, `_mm`-prefixed x86 intrinsics, `__m128/256/512`
      vector types, and NEON `v*q_f64` / `float64x2_t` spellings are
      flagged. The bit-identity contract (docs/parallelism.md) is
      audited kernel-by-kernel inside src/sparse/simd/ — every
      vectorized instruction sequence there is paired with a scalar
      reference and covered by tests/simd_kernel_test.cc. An intrinsic
      anywhere else would dodge that audit and the differential
      harness; route vector work through the PanelKernels table
      (sparse/simd/panel_kernels.h) instead.

  geoalign-raw-mutex
      No raw std locking primitives in library code (src/) outside
      src/common/thread_annotations.h: `std::mutex` (and the timed/
      recursive/shared variants), `std::lock_guard` / `unique_lock` /
      `scoped_lock` / `shared_lock`, `std::condition_variable[_any]`,
      and the `<mutex>` / `<condition_variable>` / `<shared_mutex>`
      includes are flagged. Locked state must use the annotated
      common::Mutex / common::MutexLock / common::CondVar wrappers so
      every guarded-by relationship is visible to Clang Thread Safety
      Analysis (-Wthread-safety, the `tsa` gate); a raw std::mutex is
      invisible to the analysis and silently exempts its critical
      sections from the compile-time locking contracts.

  geoalign-metrics-export
      No direct MetricsSnapshot serialization (`.ToText(...)` /
      `.ToJson(...)`) in library or C ABI code outside src/obs/. Every
      exposition of the metrics registry — CLI, C ABI, flight recorder,
      a future /metrics endpoint — goes through the one writer in
      src/obs/export.h (FormatMetricsSnapshot / WriteMetricsFile), so
      formats stay byte-identical across surfaces and new formats land
      everywhere at once. See docs/observability.md.

  geoalign-capi-abi
      The public C ABI headers (capi/*.h) must stay C99-clean: no
      C++-only keywords (class/template/namespace/constexpr/nullptr/
      throw/new/delete/bool), no `std::` or other `::` qualification,
      no reference declarators (`&`), no extensionless C++ standard
      includes, and no `=` outside preprocessor lines (the error codes
      are #defines, not enums with initializers, so a plain C compiler
      and every FFI binding generator parse the header byte-for-byte
      the same way). See docs/embedding.md; enforced end-to-end by the
      `capi` gate, which compiles examples/capi_smoke.c with a real C
      compiler under -std=c99 -Wall -Werror.

Suppression: append `// NOLINT(geoalign-<rule>)` (or bare `NOLINT`) to
the offending line, or put `// NOLINTNEXTLINE(geoalign-<rule>)` on the
line above. Suppressions should carry a rationale.

Usage:
  geoalign_lint.py [--root DIR] [FILE...]
With no FILE arguments, scans DIR/src recursively (.h and .cc). Exits
0 when clean, 1 when violations were found, 2 on usage errors.
"""

import argparse
import os
import re
import sys

RULES = (
    "geoalign-unordered-iteration",
    "geoalign-float-eq",
    "geoalign-no-throw",
    "geoalign-discarded-status",
    "geoalign-plan-bypass",
    "geoalign-raw-clock",
    "geoalign-hot-alloc",
    "geoalign-raw-intrinsic",
    "geoalign-raw-mutex",
    "geoalign-metrics-export",
    "geoalign-capi-abi",
)

# The one file allowed to spell the raw std locking primitives: the
# annotated wrapper layer itself (docs/static_analysis.md).
RAW_MUTEX_EXEMPT = "src/common/thread_annotations.h"

# Subsystems whose kernels feed the deterministic reductions.
KERNEL_DIRS = ("src/sparse", "src/core", "src/linalg")

# Serving hot paths that must execute compiled CrosswalkPlans rather
# than the legacy recompile-per-call entry points. Path *prefixes*:
# "src/core/pipeline." covers pipeline.h and pipeline.cc.
HOT_PATH_PREFIXES = ("src/core/pipeline.", "src/core/batch.", "src/eval/")

FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fFlL]?|\d+[eE][+-]?\d+[fFlL]?"
FLOAT_EQ_RE = re.compile(
    r"(?:(?:%s)\s*(?:==|!=))|(?:(?:==|!=)\s*[-+]?(?:%s))"
    % (FLOAT_LITERAL, FLOAT_LITERAL)
)
THROW_RE = re.compile(r"\bthrow\b")
# Member call to any interpolator's Crosswalk, or the preserved legacy
# free function. Plan execution (Execute/ExecuteWith) never matches.
PLAN_BYPASS_RE = re.compile(
    r"(?:\.|->)\s*Crosswalk\s*\(|\bCrosswalkUncompiled\s*\(")
# Raw clock reads outside src/obs/. Matches the fully and partially
# qualified spellings (`std::chrono::steady_clock::now(`,
# `chrono::steady_clock::now(`, `steady_clock::now(`).
RAW_CLOCK_RE = re.compile(
    r"(?:std\s*::\s*)?(?:chrono\s*::\s*)?"
    r"(?:steady|system|high_resolution)_clock\s*::\s*now\s*\(")
# Heap activity inside a GEOALIGN_HOT_LOOP region: a std::vector
# construction (reference/pointer bindings to an existing vector are
# fine — no [&*] after the template args), a growth/realloc member
# call, or a bare `new`.
HOT_ALLOC_RE = re.compile(
    r"\bstd\s*::\s*vector\s*<[^;{}]*?>\s*(?!\s*[&*])[A-Za-z_(]"
    r"|(?:\.|->)\s*(?:push_back|emplace_back|resize|reserve|insert|assign)"
    r"\s*\("
    r"|\bnew\b")
# Raw SIMD spellings outside src/sparse/simd/: the vendor headers, any
# `_mm`/`_mm256`/`_mm512`-prefixed x86 intrinsic call, the x86 vector
# types, and the NEON q-form f64 intrinsics / vector type. Matching is
# by spelling, not semantics — the goal is to keep every vector
# instruction sequence inside the audited kernel directory.
# Raw std locking primitives outside the annotated wrapper header:
# the lockable types, the RAII lock adapters, the condition variables,
# and the headers that provide them. Spelling-level on purpose — any
# mention in code is a bypass of the annotated layer.
RAW_MUTEX_RE = re.compile(
    r"#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>"
    r"|\bstd\s*::\s*(?:mutex|timed_mutex|recursive_mutex"
    r"|recursive_timed_mutex|shared_mutex|shared_timed_mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock"
    r"|condition_variable(?:_any)?)\b")
# Direct MetricsSnapshot serialization outside the one exposition
# writer (src/obs/export.h). Member-call spelling only: the writer
# itself (and tests) may call the snapshot methods; everything else
# must go through FormatMetricsSnapshot / WriteMetricsFile.
METRICS_EXPORT_RE = re.compile(r"(?:\.|->)\s*To(?:Text|Json)\s*\(")
RAW_INTRINSIC_RE = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|arm_neon)\.h>"
    r"|\b_mm(?:256|512)?_[a-z0-9_]+\s*\("
    r"|\b__m(?:128|256|512)[di]?\b"
    r"|\bfloat64x2_t\b"
    r"|\bv[a-z][a-z0-9_]*q_(?:f64|u64)\b")
# C++ leakage into the C ABI headers (capi/*.h). Spelling-level: any
# C++-only keyword, any `::` qualification, a reference declarator, or
# an extensionless (C++ standard library) include makes the header
# unparseable or subtly different under a plain C compiler.
CAPI_CXX_TOKEN_RE = re.compile(
    r"\b(?:class|template|namespace|typename|constexpr|nullptr|throw"
    r"|new|delete|bool|using|virtual|operator|static_cast|const_cast"
    r"|reinterpret_cast|dynamic_cast)\b"
    r"|::"
    r"|&")
CAPI_INCLUDE_RE = re.compile(r"#\s*include\s*[<\"]([^>\"]+)[>\"]")
# A bare assignment/initializer outside the preprocessor: `=` that is
# not part of ==, !=, <=, >=.
CAPI_ASSIGN_RE = re.compile(r"(?<![=!<>])=(?!=)")
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]*?>\s*(?:const\s*)?[&*]?\s*([A-Za-z_]\w*)"
)
FALLIBLE_DECL_RE = re.compile(
    r"\b(?:Status|Result\s*<[^;{}()=]*>)\s+(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\("
)
# A call that *begins* a statement: preceded by ; { } or ) (the latter
# covers `if (...) Foo();`), optionally behind a (void) cast. Member
# calls (x.Foo(), x->Foo()) are deliberately excluded — a name-level
# lint cannot resolve which overload a member call hits (e.g. the void
# CooBuilder::Add vs the fallible sparse::Add); discarded member-call
# results are enforced by [[nodiscard]] at compile time instead.
BARE_CALL_RE = re.compile(
    r"(?<=[;{})])\s*(?:\(void\)\s*)?"
    r"(?<![.\w>])(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\("
)
KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "do",
    "else", "case", "new", "delete", "static_cast", "const_cast",
    "reinterpret_cast", "assert",
}


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving the
    line structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
            elif c in "\"'":
                mode = c
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # inside a string or char literal
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == mode:
                mode = None
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def suppressed(raw_lines, lineno, rule):
    """True if `rule` is NOLINT'ed on this line or via NOLINTNEXTLINE."""
    def matches(text, directive):
        m = re.search(directive + r"(?:\(([^)]*)\))?", text)
        if not m:
            return False
        return m.group(1) is None or rule in m.group(1)

    line = raw_lines[lineno - 1]
    if matches(line, r"\bNOLINT\b") and "NOLINTNEXTLINE" not in line:
        return True
    if lineno >= 2 and matches(raw_lines[lineno - 2], r"\bNOLINTNEXTLINE\b"):
        return True
    return False


def line_of(offset, text):
    return text.count("\n", 0, offset) + 1


class Linter:
    def __init__(self, root):
        self.root = os.path.abspath(root)
        self.violations = []
        self.fallible = set()

    def rel(self, path):
        return os.path.relpath(os.path.abspath(path), self.root)

    def report(self, path, lineno, rule, message, raw_lines):
        if not suppressed(raw_lines, lineno, rule):
            self.violations.append(
                "%s:%d: [%s] %s" % (self.rel(path), lineno, rule, message))

    def collect_fallible(self, files):
        """First pass: names of functions returning Status / Result."""
        for path in files:
            try:
                stripped = strip_comments_and_strings(read_text(path))
            except OSError:
                continue
            for m in FALLIBLE_DECL_RE.finditer(stripped):
                self.fallible.add(m.group(1))
        # Status factory helpers are fallible "constructors", not calls
        # whose result encodes an operation's outcome; a bare
        # `Status::Internal("x");` is pointless but harmless.
        self.fallible.discard("OK")

    def lint_file(self, path):
        raw = read_text(path)
        raw_lines = raw.split("\n")
        stripped = strip_comments_and_strings(raw)
        rel = self.rel(path).replace(os.sep, "/")
        in_tests = rel.startswith("tests/")
        in_kernels = any(
            rel.startswith(d + "/") for d in KERNEL_DIRS)

        in_hot_paths = any(rel.startswith(p) for p in HOT_PATH_PREFIXES)

        if not in_tests:
            self.check_float_eq(path, stripped, raw_lines)
            self.check_no_throw(path, stripped, raw_lines)
            self.check_discarded_status(path, stripped, raw_lines)
        if in_kernels:
            self.check_unordered_iteration(path, stripped, raw_lines)
        if in_hot_paths and not in_tests:
            self.check_plan_bypass(path, stripped, raw_lines)
        if rel.startswith("src/") and not rel.startswith("src/obs/"):
            self.check_raw_clock(path, stripped, raw_lines)
        if rel.startswith(("src/sparse/", "src/partition/", "src/geom/")):
            self.check_hot_alloc(path, stripped, raw_lines)
        if rel.startswith("src/") and not rel.startswith("src/sparse/simd/"):
            self.check_raw_intrinsic(path, stripped, raw_lines)
        if rel.startswith("src/") and rel != RAW_MUTEX_EXEMPT:
            self.check_raw_mutex(path, stripped, raw_lines)
        if ((rel.startswith("src/") and not rel.startswith("src/obs/"))
                or rel.startswith("capi/")):
            self.check_metrics_export(path, stripped, raw_lines)
        if rel.startswith("capi/") and rel.endswith(".h"):
            self.check_capi_abi(path, stripped, raw_lines)

    def check_float_eq(self, path, stripped, raw_lines):
        for m in FLOAT_EQ_RE.finditer(stripped):
            self.report(
                path, line_of(m.start(), stripped), "geoalign-float-eq",
                "raw ==/!= against a floating-point literal; use "
                "ExactlyZero/ExactlyEqual (common/float_eq.h) or a "
                "tolerance", raw_lines)

    def check_no_throw(self, path, stripped, raw_lines):
        for m in THROW_RE.finditer(stripped):
            self.report(
                path, line_of(m.start(), stripped), "geoalign-no-throw",
                "`throw` in library code; return Status/Result "
                "(common/status.h) or abort via GEOALIGN_CHECK",
                raw_lines)

    def check_plan_bypass(self, path, stripped, raw_lines):
        for m in PLAN_BYPASS_RE.finditer(stripped):
            self.report(
                path, line_of(m.start(), stripped), "geoalign-plan-bypass",
                "legacy recompile-per-call crosswalk entry point in a "
                "serving hot path; compile a CrosswalkPlan (or use "
                "PlanCache) and Execute it, or NOLINT with a rationale",
                raw_lines)

    def check_raw_clock(self, path, stripped, raw_lines):
        for m in RAW_CLOCK_RE.finditer(stripped):
            self.report(
                path, line_of(m.start(), stripped), "geoalign-raw-clock",
                "raw std::chrono clock read outside src/obs/; use the "
                "obs timing primitives (obs::Stopwatch, obs::NowTicks, "
                "GEOALIGN_TRACE_SPAN) so one steady_clock policy holds "
                "tree-wide", raw_lines)

    def check_hot_alloc(self, path, stripped, raw_lines):
        # The region markers live in comments, so they are found in the
        # RAW lines (strip_comments_and_strings blanks them); the
        # violations are matched in the stripped text.
        stripped_lines = strip_comments_and_strings(
            "\n".join(raw_lines)).split("\n")
        in_hot = False
        for idx, raw in enumerate(raw_lines, start=1):
            if "GEOALIGN_HOT_LOOP_BEGIN" in raw:
                in_hot = True
                continue
            if "GEOALIGN_HOT_LOOP_END" in raw:
                in_hot = False
                continue
            if not in_hot or idx > len(stripped_lines):
                continue
            for m in HOT_ALLOC_RE.finditer(stripped_lines[idx - 1]):
                self.report(
                    path, idx, "geoalign-hot-alloc",
                    "heap allocation ('%s') inside a GEOALIGN_HOT_LOOP "
                    "region; preallocate in the workspace Prepare, or "
                    "NOLINT with a rationale that capacity is reserved"
                    % m.group(0).strip(), raw_lines)

    def check_raw_intrinsic(self, path, stripped, raw_lines):
        for m in RAW_INTRINSIC_RE.finditer(stripped):
            self.report(
                path, line_of(m.start(), stripped),
                "geoalign-raw-intrinsic",
                "raw SIMD intrinsic ('%s') outside src/sparse/simd/; "
                "vector code lives in the audited kernel directory — "
                "use the PanelKernels table "
                "(sparse/simd/panel_kernels.h) so the differential "
                "harness covers it" % m.group(0).strip(), raw_lines)

    def check_raw_mutex(self, path, stripped, raw_lines):
        for m in RAW_MUTEX_RE.finditer(stripped):
            self.report(
                path, line_of(m.start(), stripped), "geoalign-raw-mutex",
                "raw std locking primitive ('%s') outside "
                "common/thread_annotations.h; use the annotated "
                "common::Mutex / common::MutexLock / common::CondVar "
                "wrappers so -Wthread-safety sees the lock"
                % m.group(0).strip(), raw_lines)

    def check_metrics_export(self, path, stripped, raw_lines):
        for m in METRICS_EXPORT_RE.finditer(stripped):
            self.report(
                path, line_of(m.start(), stripped),
                "geoalign-metrics-export",
                "direct metrics serialization ('%s') outside src/obs/; "
                "route it through the one exposition writer "
                "(obs::FormatMetricsSnapshot / obs::WriteMetricsFile in "
                "obs/export.h) so every surface stays byte-identical"
                % m.group(0).strip(), raw_lines)

    def check_capi_abi(self, path, stripped, raw_lines):
        for m in CAPI_CXX_TOKEN_RE.finditer(stripped):
            self.report(
                path, line_of(m.start(), stripped), "geoalign-capi-abi",
                "C++ construct ('%s') in a C ABI header; capi/*.h must "
                "compile under a plain C99 compiler (docs/embedding.md)"
                % m.group(0).strip(), raw_lines)
        for m in CAPI_INCLUDE_RE.finditer(stripped):
            if not m.group(1).endswith(".h"):
                self.report(
                    path, line_of(m.start(), stripped),
                    "geoalign-capi-abi",
                    "C++ standard include ('%s') in a C ABI header; "
                    "only C headers (<stddef.h>, <stdint.h>, ...) are "
                    "allowed" % m.group(1), raw_lines)
        for idx, line in enumerate(stripped.split("\n"), start=1):
            if line.lstrip().startswith("#"):
                continue
            for m in CAPI_ASSIGN_RE.finditer(line):
                self.report(
                    path, idx, "geoalign-capi-abi",
                    "initializer/assignment outside the preprocessor in "
                    "a C ABI header; constants are #defines so C and "
                    "binding generators parse identically", raw_lines)

    def check_unordered_iteration(self, path, stripped, raw_lines):
        names = set(UNORDERED_DECL_RE.findall(stripped))
        if not names:
            return
        pattern = re.compile(
            r"for\s*\([^;()]*:\s*(%(n)s)\s*\)"
            r"|(?<![\w.])(%(n)s)\s*\.\s*(?:begin|cbegin|rbegin)\s*\("
            % {"n": "|".join(re.escape(n) for n in sorted(names))})
        for m in pattern.finditer(stripped):
            name = m.group(1) or m.group(2)
            self.report(
                path, line_of(m.start(), stripped),
                "geoalign-unordered-iteration",
                "iteration over unordered container '%s' in a kernel "
                "subsystem; order is nondeterministic — use a sorted "
                "container or iterate indices" % name, raw_lines)

    def check_discarded_status(self, path, stripped, raw_lines):
        for m in BARE_CALL_RE.finditer(stripped):
            name = m.group(1)
            if name in KEYWORDS or name not in self.fallible:
                continue
            # Find the matching ')' of the call; a discard is a call
            # followed directly by ';'.
            depth = 0
            i = m.end() - 1
            while i < len(stripped):
                if stripped[i] == "(":
                    depth += 1
                elif stripped[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            tail = stripped[i + 1:i + 32].lstrip()
            if tail.startswith(";"):
                self.report(
                    path, line_of(m.start(1), stripped),
                    "geoalign-discarded-status",
                    "result of Status/Result-returning '%s' is "
                    "discarded; check, propagate with "
                    "GEOALIGN_RETURN_IF_ERROR, or CheckOK" % name,
                    raw_lines)


def read_text(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


def default_files(root):
    files = []
    for sub in ("src", "capi"):
        top = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(top):
            for fn in sorted(filenames):
                if fn.endswith((".h", ".cc")):
                    files.append(os.path.join(dirpath, fn))
    return sorted(files)


def main(argv):
    parser = argparse.ArgumentParser(
        description="GeoAlign project-specific correctness lints")
    parser.add_argument(
        "--root", default=os.path.join(os.path.dirname(__file__), ".."),
        help="project root; rule scoping (src/, tests/, kernel dirs) is "
             "computed relative to it")
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule names")
    parser.add_argument("files", nargs="*", help="files to lint "
                        "(default: all .h/.cc under <root>/src)")
    args = parser.parse_args(argv)

    if args.list_rules:
        print("\n".join(RULES))
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print("geoalign_lint: no such root: %s" % root, file=sys.stderr)
        return 2
    files = [os.path.abspath(f) for f in args.files] or default_files(root)
    missing = [f for f in files if not os.path.isfile(f)]
    if missing:
        for f in missing:
            print("geoalign_lint: no such file: %s" % f, file=sys.stderr)
        return 2

    linter = Linter(root)
    # Fallible names come from the *project's* headers as well as the
    # files under lint, so call sites in a .cc see declarations from .h.
    linter.collect_fallible(sorted(set(default_files(root) + files)))
    for path in files:
        linter.lint_file(path)

    for v in linter.violations:
        print(v)
    if linter.violations:
        print("geoalign_lint: %d violation(s)" % len(linter.violations),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
