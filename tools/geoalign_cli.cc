// geoalign_cli — command-line crosswalk over CSV files.
//
// Usage:
//   geoalign_cli --objective <unit,value csv>
//                --ref <name>=<crosswalk csv> [--ref ...]
//                [--method geoalign|dasymetric=<ref>|areal|regression]
//                [--output aggregates|dm] (geoalign only: `aggregates`
//                                        serves through the fused
//                                        zero-materialization execute
//                                        lane; `dm` (default) runs the
//                                        materializing path)
//                [--out <path>]        (default: stdout)
//                [--weights]           (print learned weights to stderr)
//                [--metrics-out <path>] (write a metrics snapshot; see
//                                        docs/observability.md)
//                [--metrics-format prom|json|text] (snapshot format for
//                                        --metrics-out; default json)
//                [--trace-out <path>]   (write Chrome trace-event JSON,
//                                        loadable at ui.perfetto.dev)
//                [--telemetry on|off]   (override GEOALIGN_TELEMETRY;
//                                        --metrics-out/--trace-out
//                                        imply `on` unless --telemetry
//                                        is passed explicitly)
//                [--request-id <id>]    (request id stamped on spans
//                                        and audit records; generated
//                                        when omitted)
//                [--flight-recorder-out <path>] (dump the flight
//                                        recorder JSONL at exit and on
//                                        crash/fatal)
//
// Crosswalk CSVs are long-form: columns `source,target,value` (one row
// per non-empty intersection; the reference's source aggregates are
// the row sums). The objective CSV has columns `unit,value`. The unit
// universes are derived from the union of the crosswalk files; every
// objective unit must appear there.
//
// Example:
//   geoalign_cli --objective steam.csv
//                --ref population=pop_crosswalk.csv
//                --ref addresses=usps_crosswalk.csv > steam_by_county.csv

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/areal_weighting.h"
#include "core/crosswalk_plan.h"
#include "core/dasymetric.h"
#include "core/geoalign.h"
#include "core/regression.h"
#include "io/crosswalk_io.h"
#include "io/csv.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/request_context.h"
#include "obs/telemetry.h"

namespace geoalign {
namespace {

struct CliArgs {
  std::string objective_path;
  std::vector<std::pair<std::string, std::string>> refs;  // name -> path
  std::string method = "geoalign";
  std::string output = "dm";
  std::string out_path;
  std::string metrics_out;
  std::string trace_out;
  std::string flight_recorder_out;
  std::string request_id;
  obs::MetricsFormat metrics_format = obs::MetricsFormat::kJson;
  bool print_weights = false;
};

Result<CliArgs> ParseArgs(int argc, char** argv) {
  CliArgs args;
  std::string metrics_format;
  bool telemetry_explicit = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> Result<std::string> {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value after " + arg);
      }
      return std::string(argv[++i]);
    };
    // Accept both `--flag value` and `--flag=value` for the telemetry
    // flags (scripted callers tend to use the `=` form).
    auto match_valued = [&](const char* flag, std::string* out) -> bool {
      std::string prefix = std::string(flag) + "=";
      if (StartsWith(arg, prefix)) {
        *out = arg.substr(prefix.size());
        return true;
      }
      return false;
    };
    if (match_valued("--metrics-out", &args.metrics_out) ||
        match_valued("--metrics-format", &metrics_format) ||
        match_valued("--trace-out", &args.trace_out) ||
        match_valued("--flight-recorder-out", &args.flight_recorder_out) ||
        match_valued("--request-id", &args.request_id)) {
      continue;
    }
    std::string telemetry_value;
    if (arg == "--telemetry" || match_valued("--telemetry",
                                             &telemetry_value)) {
      telemetry_explicit = true;
      if (telemetry_value.empty()) {
        GEOALIGN_ASSIGN_OR_RETURN(telemetry_value, next());
      }
      if (telemetry_value == "on") {
        obs::SetEnabled(true);
      } else if (telemetry_value == "off") {
        obs::SetEnabled(false);
      } else {
        return Status::InvalidArgument("--telemetry expects on|off");
      }
      continue;
    }
    if (arg == "--output" || match_valued("--output", &args.output)) {
      if (arg == "--output") {
        GEOALIGN_ASSIGN_OR_RETURN(args.output, next());
      }
      if (args.output != "aggregates" && args.output != "dm") {
        return Status::InvalidArgument("--output expects aggregates|dm");
      }
      continue;
    }
    if (arg == "--objective") {
      GEOALIGN_ASSIGN_OR_RETURN(args.objective_path, next());
    } else if (arg == "--ref") {
      GEOALIGN_ASSIGN_OR_RETURN(std::string spec, next());
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("--ref expects <name>=<csv path>");
      }
      args.refs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--method") {
      GEOALIGN_ASSIGN_OR_RETURN(args.method, next());
    } else if (arg == "--out") {
      GEOALIGN_ASSIGN_OR_RETURN(args.out_path, next());
    } else if (arg == "--metrics-out") {
      GEOALIGN_ASSIGN_OR_RETURN(args.metrics_out, next());
    } else if (arg == "--metrics-format") {
      GEOALIGN_ASSIGN_OR_RETURN(metrics_format, next());
    } else if (arg == "--trace-out") {
      GEOALIGN_ASSIGN_OR_RETURN(args.trace_out, next());
    } else if (arg == "--flight-recorder-out") {
      GEOALIGN_ASSIGN_OR_RETURN(args.flight_recorder_out, next());
    } else if (arg == "--request-id") {
      GEOALIGN_ASSIGN_OR_RETURN(args.request_id, next());
    } else if (arg == "--weights") {
      args.print_weights = true;
    } else if (arg == "--help" || arg == "-h") {
      return Status::InvalidArgument("help requested");
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (args.objective_path.empty()) {
    return Status::InvalidArgument("--objective is required");
  }
  if (args.refs.empty()) {
    return Status::InvalidArgument("at least one --ref is required");
  }
  if (!metrics_format.empty() &&
      !obs::ParseMetricsFormat(metrics_format, &args.metrics_format)) {
    return Status::InvalidArgument(
        "--metrics-format expects prom|json|text");
  }
  // Asking for a telemetry artifact implies wanting telemetry: enable
  // it unless the user pinned the switch with an explicit --telemetry.
  if (!telemetry_explicit &&
      (!args.metrics_out.empty() || !args.trace_out.empty() ||
       !args.flight_recorder_out.empty())) {
    obs::SetEnabled(true);
  }
  return args;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: geoalign_cli --objective <csv> --ref <name>=<csv> [...]\n"
      "  [--method geoalign|dasymetric=<ref>|areal|regression]\n"
      "  [--output aggregates|dm] [--out <path>] [--weights]\n"
      "  [--metrics-out <path>] [--metrics-format prom|json|text]\n"
      "  [--trace-out <path>] [--telemetry on|off]\n"
      "  [--request-id <id>] [--flight-recorder-out <path>]\n"
      "objective csv columns: unit,value\n"
      "crosswalk csv columns: source,target,value\n");
}

Result<int> Run(const CliArgs& args) {
  if (!args.flight_recorder_out.empty()) {
    obs::SetFlightRecorderDumpPath(args.flight_recorder_out);
    obs::InstallCrashHandlers();
  }
  // Every span and audit record below carries this request identity
  // (generated "req-<n>" when --request-id is omitted).
  obs::RequestScope request_scope(args.request_id);

  // Load all crosswalk files; unify unit universes across them.
  std::vector<io::LoadedCrosswalk> crosswalks;
  std::vector<std::string> source_units;
  std::vector<std::string> target_units;
  for (const auto& [name, path] : args.refs) {
    GEOALIGN_ASSIGN_OR_RETURN(io::Table table, io::ReadCsvFile(path));
    GEOALIGN_ASSIGN_OR_RETURN(
        io::LoadedCrosswalk cw,
        io::CrosswalkFromTable(table, "source", "target", "value"));
    for (const std::string& u : cw.source_units) source_units.push_back(u);
    for (const std::string& u : cw.target_units) target_units.push_back(u);
    crosswalks.push_back(std::move(cw));
  }
  std::sort(source_units.begin(), source_units.end());
  source_units.erase(
      std::unique(source_units.begin(), source_units.end()),
      source_units.end());
  std::sort(target_units.begin(), target_units.end());
  target_units.erase(
      std::unique(target_units.begin(), target_units.end()),
      target_units.end());

  // Re-resolve every crosswalk against the unified universes (cheap:
  // reparse its long form).
  core::CrosswalkInput input;
  for (size_t k = 0; k < args.refs.size(); ++k) {
    io::Table long_form = io::CrosswalkToTable(crosswalks[k], "source",
                                               "target", "value");
    GEOALIGN_ASSIGN_OR_RETURN(
        io::LoadedCrosswalk aligned,
        io::CrosswalkFromTable(long_form, "source", "target", "value",
                               source_units, target_units));
    input.references.push_back(
        io::ReferenceFromCrosswalk(args.refs[k].first, aligned));
  }

  // Objective column.
  GEOALIGN_ASSIGN_OR_RETURN(io::Table obj_table,
                            io::ReadCsvFile(args.objective_path));
  GEOALIGN_ASSIGN_OR_RETURN(
      input.objective_source,
      io::AggregatesFromTable(obj_table, "unit", "value", source_units));
  GEOALIGN_RETURN_IF_ERROR(input.Validate());

  // Method selection.
  std::unique_ptr<core::Interpolator> method;
  if (args.method == "geoalign") {
    method = std::make_unique<core::GeoAlign>();
  } else if (StartsWith(args.method, "dasymetric=")) {
    method = std::make_unique<core::Dasymetric>(
        args.method.substr(std::strlen("dasymetric=")));
  } else if (args.method == "regression") {
    method = std::make_unique<core::RegressionBaseline>();
  } else if (args.method == "areal") {
    return Status::InvalidArgument(
        "areal weighting needs intersection areas; provide an area "
        "crosswalk as a --ref and use --method dasymetric=<that ref>");
  } else {
    return Status::InvalidArgument("unknown method: " + args.method);
  }

  core::CrosswalkResult result;
  if (args.output == "aggregates") {
    // The fused execute lane exists only on the compiled-plan path.
    if (args.method != "geoalign") {
      return Status::InvalidArgument(
          "--output aggregates requires --method geoalign");
    }
    GEOALIGN_ASSIGN_OR_RETURN(
        core::CrosswalkPlan plan,
        core::CrosswalkPlan::Compile(input, core::GeoAlignOptions{}));
    GEOALIGN_ASSIGN_OR_RETURN(
        result, plan.Execute(input.objective_source,
                             core::ExecuteOutput::kAggregatesOnly));
  } else {
    GEOALIGN_ASSIGN_OR_RETURN(result, method->Crosswalk(input));
  }

  if (args.print_weights && !result.weights.empty()) {
    std::fprintf(stderr, "# learned weights (%s):\n",
                 method->name().c_str());
    for (size_t k = 0; k < input.references.size(); ++k) {
      std::fprintf(stderr, "#   %-24s %.6f\n",
                   input.references[k].name.c_str(), result.weights[k]);
    }
  }

  io::Table out({"unit", "value"});
  for (size_t j = 0; j < target_units.size(); ++j) {
    GEOALIGN_RETURN_IF_ERROR(out.AppendRow(
        {target_units[j], StrFormat("%.12g", result.target_estimates[j])}));
  }
  if (args.out_path.empty()) {
    std::fputs(io::ToCsv(out).c_str(), stdout);
  } else {
    GEOALIGN_RETURN_IF_ERROR(io::WriteCsvFile(out, args.out_path));
  }

  // Telemetry exports run last so they cover the whole crosswalk.
  if (!args.metrics_out.empty()) {
    std::string error;
    if (!obs::WriteMetricsFile(args.metrics_out, args.metrics_format,
                               &error)) {
      return Status::Internal("--metrics-out: " + error);
    }
  }
  if (!args.trace_out.empty()) {
    std::string error;
    if (!obs::WriteTraceJsonFile(args.trace_out, &error)) {
      return Status::Internal("--trace-out: " + error);
    }
  }
  if (!args.flight_recorder_out.empty()) {
    std::string error;
    if (!obs::FlightRecorder::Global().DumpToFile(args.flight_recorder_out,
                                                  "demand", &error)) {
      return Status::Internal("--flight-recorder-out: " + error);
    }
  }
  if (!args.metrics_out.empty() || !args.trace_out.empty()) {
    std::fprintf(stderr, "%s", obs::SummaryTable().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace geoalign

int main(int argc, char** argv) {
  auto args = geoalign::ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().message().c_str());
    geoalign::PrintUsage();
    return 2;
  }
  auto rc = geoalign::Run(*args);
  if (!rc.ok()) {
    std::fprintf(stderr, "error: %s\n", rc.status().ToString().c_str());
    return 1;
  }
  return *rc;
}
