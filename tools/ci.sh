#!/usr/bin/env bash
# CI entry point: the full correctness gate matrix
# (docs/static_analysis.md). Five gates, each independently skippable:
#
#   plain   build + full ctest, GEOALIGN_WERROR=ON (default)
#   bench   realign_throughput smoke at tiny scale — exercises the
#           compiled serving path against the legacy per-call oracle
#           and fails on any bit difference
#   tsan    rebuild with GEOALIGN_SANITIZE=thread, full ctest
#   ubsan   rebuild with GEOALIGN_SANITIZE=undefined
#           (-fno-sanitize-recover=all), full ctest
#   tidy    tools/run_clang_tidy.sh over the compile database; FAILS
#           LOUDLY when clang-tidy is not installed — a silently
#           skipped gate reads as a passing one. Skip explicitly with
#           SKIP_TIDY=1 on machines without clang-tidy.
#   lint    tools/geoalign_lint.py project-specific correctness lints
#
# Environment knobs:
#   JOBS          parallel build/test jobs (default: nproc)
#   BUILD_DIR     plain build tree          (default: build)
#   TSAN_DIR      ThreadSanitizer tree      (default: build-tsan)
#   UBSAN_DIR     UBSan tree                (default: build-ubsan)
#   CTEST_FILTER  optional ctest -R regex applied to every test run;
#                 e.g. CTEST_FILTER='ThreadPool|Parallel' for a quick
#                 concurrency-only smoke.
#   SKIP_TSAN=1 SKIP_UBSAN=1 SKIP_TIDY=1 SKIP_LINT=1 SKIP_BENCH=1
#                 skip the corresponding gate (recorded as "skipped"
#                 in the summary, never as a pass).
set -uo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-build}"
TSAN_DIR="${TSAN_DIR:-build-tsan}"
UBSAN_DIR="${UBSAN_DIR:-build-ubsan}"
CTEST_FILTER="${CTEST_FILTER:-}"

GATES=(plain bench tsan ubsan tidy lint)
declare -A RESULT
failed=0

run_suite() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" &&
    cmake --build "$dir" -j "$JOBS" &&
    ctest --test-dir "$dir" --output-on-failure --no-tests=error \
      -j "$JOBS" ${CTEST_FILTER:+-R "$CTEST_FILTER"}
}

# run_gate <name> <skip-flag-value> <command...>
run_gate() {
  local name="$1" skip="$2"
  shift 2
  echo
  echo "=== gate: $name ==="
  if [[ "$skip" == "1" ]]; then
    echo "skipped (SKIP_${name^^}=1)"
    RESULT[$name]="skipped"
    return
  fi
  if "$@"; then
    RESULT[$name]="pass"
  else
    RESULT[$name]="FAIL"
    failed=1
  fi
}

run_gate plain 0 run_suite "$BUILD_DIR"
run_gate bench "${SKIP_BENCH:-0}" env \
  GEOALIGN_BENCH_SCALE=0.05 GEOALIGN_BENCH_REPS=2 GEOALIGN_BENCH_MAX_COLS=64 \
  "$BUILD_DIR/bench/realign_throughput" \
  "$BUILD_DIR/BENCH_realign_throughput_smoke.json"
run_gate tsan "${SKIP_TSAN:-0}" run_suite "$TSAN_DIR" -DGEOALIGN_SANITIZE=thread
run_gate ubsan "${SKIP_UBSAN:-0}" run_suite "$UBSAN_DIR" -DGEOALIGN_SANITIZE=undefined
run_gate tidy "${SKIP_TIDY:-0}" tools/run_clang_tidy.sh "$BUILD_DIR"
run_gate lint "${SKIP_LINT:-0}" python3 tools/geoalign_lint.py --root .

echo
echo "=== gate summary ==="
printf '%-8s %s\n' "gate" "result"
printf '%-8s %s\n' "----" "------"
for g in "${GATES[@]}"; do
  printf '%-8s %s\n' "$g" "${RESULT[$g]}"
done
exit "$failed"
