#!/usr/bin/env bash
# CI entry point: build + full ctest, then rebuild with
# GEOALIGN_SANITIZE=thread and run the suite under ThreadSanitizer so
# data races in the parallel execution layer (src/common/thread_pool)
# are caught before merge.
#
# Environment knobs:
#   JOBS          parallel build/test jobs (default: nproc)
#   BUILD_DIR     plain build tree          (default: build)
#   TSAN_DIR      ThreadSanitizer tree      (default: build-tsan)
#   CTEST_FILTER  optional ctest -R regex applied to both runs; e.g.
#                 CTEST_FILTER='ThreadPool|Parallel' for a quick
#                 concurrency-only smoke.
#   SKIP_TSAN=1   plain build + test only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-build}"
TSAN_DIR="${TSAN_DIR:-build-tsan}"
CTEST_FILTER="${CTEST_FILTER:-}"

run_suite() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure --no-tests=error -j "$JOBS" \
    ${CTEST_FILTER:+-R "$CTEST_FILTER"}
}

echo "=== plain build + ctest ==="
run_suite "$BUILD_DIR"

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "=== ThreadSanitizer build + ctest ==="
  run_suite "$TSAN_DIR" -DGEOALIGN_SANITIZE=thread
fi
