#!/usr/bin/env bash
# CI entry point: the full correctness gate matrix
# (docs/static_analysis.md). Each gate is independently skippable:
#
#   plain   build + full ctest, GEOALIGN_WERROR=ON (default)
#   bench   realign_throughput smoke at tiny scale — exercises the
#           compiled serving path against the legacy per-call oracle
#           and fails on any bit difference
#   fused   fused_execute smoke at tiny scale — aggregates-only
#           RealignMany vs the materializing path; fails on any bit
#           difference, a non-aligned reference set, or a hot-path
#           workspace allocation after warmup
#   simd    the SIMD bit-identity suite (differential kernel harness +
#           panel/plan equivalence oracles) out of the plain build,
#           run twice: once with GEOALIGN_FORCE_ISA=scalar and once on
#           the native dispatch, so a vector kernel can never pass by
#           only ever being compared against itself
#   overlay overlay engine smoke: the OverlayEngineTest differential
#           suite (engine vs reference bit-identity across thread
#           counts, fast-path tolerance, zero-alloc workspace, dual
#           tree join oracle) out of the plain build, then
#           bench/overlay_scale at tiny scale — the binary exits
#           nonzero on any engine-vs-reference bit difference or any
#           steady-state hot-path allocation
#   tsan    rebuild with GEOALIGN_SANITIZE=thread, full ctest
#   asan    rebuild with GEOALIGN_SANITIZE=address (ASan+UBSan) and
#           run the full ctest with ASAN_OPTIONS=detect_leaks=1, so
#           the leak checker covers every test — the address/leak leg
#           of the sanitizer matrix
#   ubsan   rebuild with GEOALIGN_SANITIZE=undefined
#           (-fno-sanitize-recover=all), full ctest
#   tidy    tools/run_clang_tidy.sh over the compile database; FAILS
#           LOUDLY when clang-tidy is not installed — a silently
#           skipped gate reads as a passing one. Skip explicitly with
#           SKIP_TIDY=1 on machines without clang-tidy.
#   tsa     clang rebuild with GEOALIGN_THREAD_SAFETY=ON — every
#           Thread Safety Analysis diagnostic (-Wthread-safety
#           -Wthread-safety-beta) is an error tree-wide — followed by
#           the tests/tsa_test.sh negative-compile fixtures. FAILS
#           LOUDLY when clang++ is absent (the capability system is
#           clang-only); skip explicitly with SKIP_TSA=1.
#   lint    tools/geoalign_lint.py project-specific correctness lints
#   capi    the C ABI end-to-end gate (tests/capi_smoke_test.sh):
#           compile examples/capi_smoke.c with a REAL C compiler under
#           -std=c99 -Wall -Werror (any C++ leaking through
#           capi/geoalign_c.h fails the compile), run it against
#           libgeoalign_c.so, and byte-diff its output against
#           geoalign_cli on the same crosswalk — the embedding path
#           must be bit-identical to the native one
#   obs     run geoalign_cli on a generated example with --metrics-out
#           and --trace-out under GEOALIGN_TELEMETRY=0 (proving the
#           output flags implicitly enable telemetry), validate both
#           outputs parse as JSON (the trace must be Chrome trace-event
#           shaped, i.e. carry a traceEvents array), then re-run with
#           --metrics-format=prom and --flight-recorder-out and
#           validate the Prometheus exposition (every histogram's
#           _count equals its +Inf bucket) and the flight-recorder
#           JSONL dump — docs/observability.md
#   benchdiff
#           ADVISORY: run the obs_overhead and overlay_scale
#           benchmarks fresh and diff each against its committed
#           baseline (BENCH_obs_overhead.json,
#           BENCH_overlay_construction.json) with
#           tools/bench_compare.py. A regression beyond the threshold
#           is reported as ADVISORY-FAIL in the summary but never
#           fails the build (shared CI machines are noisy); regenerate
#           the baseline when a change is intentional.
#
# The summary prints a gate × toolchain matrix: each gate names the
# toolchain it ran on, and a toolchain-availability header makes a
# skipped clang-only gate (tidy, tsa) visible in every run instead of
# blending into the passes.
#
# Environment knobs:
#   JOBS          parallel build/test jobs (default: nproc)
#   BUILD_DIR     plain build tree          (default: build)
#   TSAN_DIR      ThreadSanitizer tree      (default: build-tsan)
#   ASAN_DIR      ASan+LSan tree            (default: build-asan)
#   UBSAN_DIR     UBSan tree                (default: build-ubsan)
#   TSA_DIR       clang thread-safety tree  (default: build-tsa)
#   CLANGXX       clang++ binary for the tsa gate (default: clang++)
#   CTEST_FILTER  optional ctest -R regex applied to every test run;
#                 e.g. CTEST_FILTER='ThreadPool|Parallel' for a quick
#                 concurrency-only smoke.
#   SKIP_TSAN=1 SKIP_ASAN=1 SKIP_UBSAN=1 SKIP_TIDY=1 SKIP_TSA=1
#   SKIP_LINT=1 SKIP_BENCH=1 SKIP_FUSED=1 SKIP_OBS=1 SKIP_SIMD=1
#   SKIP_OVERLAY=1 SKIP_CAPI=1 SKIP_BENCHDIFF=1
#                 skip the corresponding gate (recorded as "skipped"
#                 in the summary, never as a pass).
set -uo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-build}"
TSAN_DIR="${TSAN_DIR:-build-tsan}"
ASAN_DIR="${ASAN_DIR:-build-asan}"
UBSAN_DIR="${UBSAN_DIR:-build-ubsan}"
TSA_DIR="${TSA_DIR:-build-tsa}"
CLANGXX="${CLANGXX:-clang++}"
CTEST_FILTER="${CTEST_FILTER:-}"

GATES=(plain bench fused simd overlay tsan asan ubsan tidy tsa lint
       capi obs benchdiff)
# Which toolchain each gate runs on, for the summary matrix. "cxx" is
# the default compiler CMake resolves (gcc or clang alike).
declare -A TOOL=(
  [plain]=cxx [bench]=cxx [fused]=cxx [simd]=cxx [overlay]=cxx
  [tsan]=cxx [asan]=cxx [ubsan]=cxx [tidy]=clang-tidy [tsa]=clang++
  [lint]=python3 [capi]=cc [obs]=python3 [benchdiff]=python3
)
declare -A RESULT
failed=0

# C ABI end-to-end: C99-compile the embedder example, run it against
# libgeoalign_c.so out of the plain build, diff against the CLI. Runs
# out of the plain build tree, so order it after the plain gate.
capi_gate() {
  cmake --build "$BUILD_DIR" -j "$JOBS" --target geoalign_c geoalign_cli &&
    tests/capi_smoke_test.sh . "$BUILD_DIR"
}

# Observability end-to-end: tiny synthetic crosswalk through the CLI,
# then both telemetry artifacts must parse. Runs out of the plain
# build tree, so order it after the plain gate.
obs_gate() {
  local dir
  dir=$(mktemp -d) || return 1
  cat >"$dir/objective.csv" <<'EOF'
unit,value
s1,10
s2,20
s3,30
EOF
  cat >"$dir/ref.csv" <<'EOF'
source,target,value
s1,t1,1
s1,t2,2
s2,t1,3
s2,t2,1
s3,t2,4
EOF
  # GEOALIGN_TELEMETRY=0 proves the implicit enable: asking for a
  # telemetry artifact must flip the switch on unless an explicit
  # --telemetry pins it.
  env GEOALIGN_TELEMETRY=0 "$BUILD_DIR/tools/geoalign_cli" \
    --objective "$dir/objective.csv" --ref "population=$dir/ref.csv" \
    --metrics-out="$dir/metrics.json" --trace-out="$dir/trace.json" \
    --out "$dir/out.csv" || { rm -rf "$dir"; return 1; }
  python3 - "$dir/metrics.json" "$dir/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    metrics = json.load(f)
assert "counters" in metrics and "histograms" in metrics, metrics.keys()
assert metrics["counters"].get("compile.count", 0) >= 1, (
    "implicit telemetry enable failed: " + repr(metrics["counters"]))
with open(sys.argv[2]) as f:
    trace = json.load(f)
assert isinstance(trace.get("traceEvents"), list), type(trace)
print("obs gate: metrics + trace both parse; "
      f"{len(trace['traceEvents'])} trace event(s)")
EOF
  local rc=$?
  [[ $rc -ne 0 ]] && { rm -rf "$dir"; return "$rc"; }
  # Second pass: the Prometheus exposition and the flight recorder.
  "$BUILD_DIR/tools/geoalign_cli" \
    --objective "$dir/objective.csv" --ref "population=$dir/ref.csv" \
    --metrics-out="$dir/metrics.prom" --metrics-format=prom \
    --flight-recorder-out="$dir/flight.jsonl" --request-id=ci-obs-gate \
    --out "$dir/out2.csv" || { rm -rf "$dir"; return 1; }
  python3 - "$dir/metrics.prom" "$dir/flight.jsonl" <<'EOF'
import json, re, sys
with open(sys.argv[1]) as f:
    prom = f.read()
assert prom.startswith("# HELP "), prom[:60]
# Histograms are identified by their +Inf bucket line; each one's
# _count sample must carry the same number. (A plain _count suffix is
# ambiguous: the counter "compile.count" also sanitizes to
# geoalign_compile_count.)
infs = dict(re.findall(r'^(\w+)_bucket\{le="\+Inf"\} (\d+)$', prom, re.M))
assert infs, "no histograms in the prom exposition"
for name, inf in infs.items():
    m = re.search(r"^%s_count (\d+)$" % re.escape(name), prom, re.M)
    assert m is not None and m.group(1) == inf, (name, inf, m)
lines = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
assert lines and lines[0]["type"] == "header", lines[:1]
audits = [l for l in lines if l["type"] == "audit"]
assert any(a["request_id"] == "ci-obs-gate" for a in audits), audits
print("obs gate: prom exposition consistent "
      f"({len(infs)} histogram(s)); flight recorder dump parses "
      f"({len(audits)} audit record(s))")
EOF
  rc=$?
  rm -rf "$dir"
  return "$rc"
}

# Advisory benchmark diff: a fresh obs_overhead run against the
# committed baseline. Pure reporting — run_advisory_gate never fails
# the build on a regression; regenerate BENCH_obs_overhead.json when a
# change is intentional.
benchdiff_gate() {
  cmake --build "$BUILD_DIR" -j "$JOBS" --target obs_overhead \
    overlay_scale || return 1
  local fresh="$BUILD_DIR/BENCH_obs_overhead_fresh.json"
  local fresh_overlay="$BUILD_DIR/BENCH_overlay_construction_fresh.json"
  env GEOALIGN_BENCH_REPS=3 "$BUILD_DIR/bench/obs_overhead" "$fresh" &&
    python3 tools/bench_compare.py --threshold "${BENCHDIFF_THRESHOLD:-50}" \
      "$fresh" &&
    env GEOALIGN_BENCH_SCALE=0.02 GEOALIGN_BENCH_REPS=2 \
      "$BUILD_DIR/bench/overlay_scale" "$fresh_overlay" &&
    python3 tools/bench_compare.py --threshold "${BENCHDIFF_THRESHOLD:-50}" \
      "$fresh_overlay"
}

# Overlay engine smoke: the differential suite out of the plain build,
# then the scale benchmark tiny — overlay_scale itself exits nonzero
# on a bit difference or a steady-state hot-path allocation, so the
# zero-alloc and bit-identity contracts gate CI even at smoke scale.
overlay_gate() {
  cmake --build "$BUILD_DIR" -j "$JOBS" --target overlay_scale || return 1
  "$BUILD_DIR/tests/geoalign_tests" --gtest_brief=1 \
    --gtest_filter='OverlayEngineTest.*' &&
    env GEOALIGN_BENCH_SCALE=0.02 GEOALIGN_BENCH_REPS=2 \
      "$BUILD_DIR/bench/overlay_scale" \
      "$BUILD_DIR/BENCH_overlay_construction_smoke.json"
}

# SIMD bit-identity: the differential kernel harness plus the panel /
# plan equivalence oracles, once with dispatch forced to the scalar
# reference and once on the native ISA. Uses the plain build's test
# binary, so order it after the plain gate. GEOALIGN_FORCE_ISA is read
# once per process, hence two separate runs rather than one.
simd_gate() {
  # Leading * keeps the INSTANTIATE_TEST_SUITE_P prefix of the
  # per-ISA kernel suite (<Instantiation>/SimdKernelTest.*) in scope.
  local filter='*SimdKernelTest*:SimdDispatchTest*'
  filter+=':FusedPanelDifferentialTest*:PlanEquivalenceTest*'
  echo "--- forced scalar dispatch ---" &&
    env GEOALIGN_FORCE_ISA=scalar "$BUILD_DIR/tests/geoalign_tests" \
      --gtest_brief=1 --gtest_filter="$filter" &&
    echo "--- native dispatch ---" &&
    "$BUILD_DIR/tests/geoalign_tests" \
      --gtest_brief=1 --gtest_filter="$filter"
}

run_suite() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" &&
    cmake --build "$dir" -j "$JOBS" &&
    ctest --test-dir "$dir" --output-on-failure --no-tests=error \
      -j "$JOBS" ${CTEST_FILTER:+-R "$CTEST_FILTER"}
}

# ASan + LSan leg: GEOALIGN_SANITIZE=address compiles with
# -fsanitize=address,undefined; detect_leaks=1 arms LeakSanitizer for
# every test in the run (a leaked plan/workspace in a steady-state
# serving path is a production outage, not a nit).
asan_gate() {
  ASAN_OPTIONS="detect_leaks=1" \
    run_suite "$ASAN_DIR" -DGEOALIGN_SANITIZE=address
}

# Compile-time concurrency contracts (docs/static_analysis.md): a
# clang build with GEOALIGN_THREAD_SAFETY=ON promotes every
# -Wthread-safety[-beta] diagnostic to an error tree-wide (WERROR
# default ON), then the negative fixtures prove the annotations still
# reject seeded locking bugs. Fails loudly without clang++, matching
# the tidy gate: a silently skipped gate reads as a passing one.
tsa_gate() {
  if ! command -v "$CLANGXX" >/dev/null 2>&1; then
    echo "tsa gate: '$CLANGXX' not found." >&2
    echo "Thread Safety Analysis is clang-only. Install clang (e.g." >&2
    echo "apt install clang) or point CLANGXX at a binary. Refusing" >&2
    echo "to pass silently; set SKIP_TSA=1 to skip this gate" >&2
    echo "explicitly." >&2
    return 3
  fi
  cmake -B "$TSA_DIR" -S . -DCMAKE_CXX_COMPILER="$CLANGXX" \
    -DGEOALIGN_THREAD_SAFETY=ON &&
    cmake --build "$TSA_DIR" -j "$JOBS" &&
    CLANGXX="$CLANGXX" tests/tsa_test.sh
}

# run_gate <name> <skip-flag-value> <command...>
run_gate() {
  local name="$1" skip="$2"
  shift 2
  echo
  echo "=== gate: $name ==="
  if [[ "$skip" == "1" ]]; then
    echo "skipped (SKIP_${name^^}=1)"
    RESULT[$name]="skipped"
    return
  fi
  if "$@"; then
    RESULT[$name]="pass"
  else
    RESULT[$name]="FAIL"
    failed=1
  fi
}

# run_advisory_gate <name> <skip-flag-value> <command...> — like
# run_gate, but a failure is recorded as ADVISORY-FAIL and never sets
# the overall exit code (used for noise-prone benchmark diffs).
run_advisory_gate() {
  local name="$1" skip="$2"
  shift 2
  echo
  echo "=== gate: $name (advisory) ==="
  if [[ "$skip" == "1" ]]; then
    echo "skipped (SKIP_${name^^}=1)"
    RESULT[$name]="skipped"
    return
  fi
  if "$@"; then
    RESULT[$name]="pass"
  else
    RESULT[$name]="ADVISORY-FAIL"
  fi
}

# Toolchain availability up front, so a machine that cannot run the
# clang-only gates learns it before an hour of sanitizer rebuilds.
tool_status() {
  if command -v "$1" >/dev/null 2>&1; then echo "found"; else echo "MISSING"; fi
}
CXX_BIN="${CXX:-c++}"
echo "=== toolchain availability ==="
printf '%-12s %-8s gates: %s\n' "$CXX_BIN" "$(tool_status "$CXX_BIN")" \
  "plain bench fused simd tsan asan ubsan"
printf '%-12s %-8s gates: %s\n' "$CLANGXX" "$(tool_status "$CLANGXX")" "tsa"
printf '%-12s %-8s gates: %s\n' "${CLANG_TIDY:-clang-tidy}" \
  "$(tool_status "${CLANG_TIDY:-clang-tidy}")" "tidy"
printf '%-12s %-8s gates: %s\n' "python3" "$(tool_status python3)" \
  "lint obs benchdiff"
printf '%-12s %-8s gates: %s\n' "${CC:-cc}" "$(tool_status "${CC:-cc}")" "capi"

run_gate plain 0 run_suite "$BUILD_DIR"
run_gate bench "${SKIP_BENCH:-0}" env \
  GEOALIGN_BENCH_SCALE=0.05 GEOALIGN_BENCH_REPS=2 GEOALIGN_BENCH_MAX_COLS=64 \
  "$BUILD_DIR/bench/realign_throughput" \
  "$BUILD_DIR/BENCH_realign_throughput_smoke.json"
run_gate fused "${SKIP_FUSED:-0}" env \
  GEOALIGN_BENCH_SCALE=0.05 GEOALIGN_BENCH_REPS=2 GEOALIGN_BENCH_MAX_COLS=64 \
  "$BUILD_DIR/bench/fused_execute" \
  "$BUILD_DIR/BENCH_fused_execute_smoke.json"
run_gate simd "${SKIP_SIMD:-0}" simd_gate
run_gate overlay "${SKIP_OVERLAY:-0}" overlay_gate
run_gate tsan "${SKIP_TSAN:-0}" run_suite "$TSAN_DIR" -DGEOALIGN_SANITIZE=thread
run_gate asan "${SKIP_ASAN:-0}" asan_gate
run_gate ubsan "${SKIP_UBSAN:-0}" run_suite "$UBSAN_DIR" -DGEOALIGN_SANITIZE=undefined
run_gate tidy "${SKIP_TIDY:-0}" tools/run_clang_tidy.sh "$BUILD_DIR"
run_gate tsa "${SKIP_TSA:-0}" tsa_gate
run_gate lint "${SKIP_LINT:-0}" python3 tools/geoalign_lint.py --root .
run_gate capi "${SKIP_CAPI:-0}" capi_gate
run_gate obs "${SKIP_OBS:-0}" obs_gate
run_advisory_gate benchdiff "${SKIP_BENCHDIFF:-0}" benchdiff_gate

echo
echo "=== gate summary (gate × toolchain) ==="
printf '%-8s %-11s %s\n' "gate" "toolchain" "result"
printf '%-8s %-11s %s\n' "----" "---------" "------"
for g in "${GATES[@]}"; do
  tool="${TOOL[$g]}"
  [[ "$tool" == "cxx" ]] && tool="$CXX_BIN"
  note=""
  if [[ "${RESULT[$g]}" == "FAIL" ]]; then
    case "$g" in
      tidy) command -v "${CLANG_TIDY:-clang-tidy}" >/dev/null 2>&1 ||
              note="  (clang-tidy missing — SKIP_TIDY=1 to skip)" ;;
      tsa)  command -v "$CLANGXX" >/dev/null 2>&1 ||
              note="  (clang++ missing — SKIP_TSA=1 to skip)" ;;
    esac
  fi
  printf '%-8s %-11s %s%s\n' "$g" "$tool" "${RESULT[$g]}" "$note"
done
exit "$failed"
