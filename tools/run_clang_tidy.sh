#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over every first-party
# translation unit in the compile database.
#
# Usage:
#   tools/run_clang_tidy.sh [BUILD_DIR] [-- extra clang-tidy args]
#
# BUILD_DIR (default: build) must contain compile_commands.json — the
# root CMakeLists.txt always exports it. Exits nonzero on any finding
# (WarningsAsErrors: '*') and fails loudly when clang-tidy itself is
# missing: a silently skipped gate reads as a passing one.
#
# Environment knobs:
#   CLANG_TIDY  binary to use (default: clang-tidy)
#   JOBS        parallel workers (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="build"
if [[ $# -gt 0 && "$1" != "--" ]]; then
  BUILD_DIR="$1"
  shift
fi
[[ "${1:-}" == "--" ]] && shift

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: '$CLANG_TIDY' not found." >&2
  echo "Install clang-tidy (e.g. apt install clang-tidy) or point" >&2
  echo "CLANG_TIDY at a binary. Refusing to pass silently; set" >&2
  echo "SKIP_TIDY=1 to skip this gate in tools/ci.sh explicitly." >&2
  exit 3
fi

DB="$BUILD_DIR/compile_commands.json"
if [[ ! -f "$DB" ]]; then
  echo "run_clang_tidy: $DB not found; configure first:" >&2
  echo "  cmake -B $BUILD_DIR -S ." >&2
  exit 3
fi

# First-party TUs only: gtest/benchmark sources pulled in by the build
# are not ours to lint. Before emitting the list, cross-check it
# against the actual src/ tree and FAIL LOUDLY if any .cc there is
# absent from the compile database — a subdirectory added without
# build wiring (the way src/sparse/simd/ postdated the last audit of
# this list) would otherwise silently escape the gate forever.
mapfile -t files < <(python3 - "$DB" <<'EOF'
import json, os, sys
root = os.getcwd()
seen = set()
for entry in json.load(open(sys.argv[1])):
    f = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
    if f.startswith(root + os.sep) and "/build" not in f[len(root):]:
        seen.add(f)
missing = []
for dirpath, _, filenames in os.walk(os.path.join(root, "src")):
    for fn in sorted(filenames):
        if fn.endswith(".cc") and os.path.join(dirpath, fn) not in seen:
            missing.append(os.path.relpath(os.path.join(dirpath, fn), root))
if missing:
    print("run_clang_tidy: %d src/ translation unit(s) missing from the"
          " compile database (not built => not tidied):" % len(missing),
          file=sys.stderr)
    for f in missing:
        print("  " + f, file=sys.stderr)
    print("Add them to src/CMakeLists.txt (or delete dead files), then"
          " re-run cmake.", file=sys.stderr)
    sys.exit(4)
print("\n".join(sorted(seen)))
EOF
) || exit 4
if [[ ${#files[@]} -eq 0 ]]; then
  echo "run_clang_tidy: compile-database file list is empty; refusing" >&2
  echo "to report a vacuous pass. Reconfigure: cmake -B $BUILD_DIR -S ." >&2
  exit 4
fi

echo "run_clang_tidy: ${#files[@]} translation units, $JOBS workers"
printf '%s\n' "${files[@]}" |
  xargs -P "$JOBS" -n 1 "$CLANG_TIDY" -p "$BUILD_DIR" --quiet "$@"
echo "run_clang_tidy: clean"
