#!/usr/bin/env python3
"""Compare fresh benchmark runs against the committed baselines.

Each bench binary writes a JSON result file whose "bench" field names
it (e.g. {"bench": "obs_overhead", ...}); the committed baseline for
that bench lives at BENCH_<bench>.json in the repo root. This tool
flattens both documents to dotted numeric paths, pairs them up, and
reports the relative change per metric with a direction-aware verdict:

  lower-is-better   names matching seconds|_ns|_us|_ms|latency|ratio|
                    _over_|bytes|allocs
  higher-is-better  names matching speedup|per_sec|per_second|
                    throughput|ops
  informational     everything else (shape/config numbers — counts,
                    sizes, dates never gate)

A metric that moved in the bad direction by more than --threshold
percent is a regression and the exit code is 1 (the `benchdiff` gate
in tools/ci.sh runs this advisorily — a regression is reported in the
summary but does not fail the build, since shared CI machines are
noisy; SKIP_BENCHDIFF=1 skips it entirely).

When the fresh run's bench_scale differs from the baseline's, absolute
numbers are not comparable; the report is still printed but every
verdict is downgraded to informational and the exit code is 0.

Usage:
  bench_compare.py [--baseline-dir DIR] [--threshold PCT] fresh.json...
"""

import argparse
import json
import os
import re
import sys

LOWER_BETTER_RE = re.compile(
    r"seconds|_ns\b|_us\b|_ms\b|latency|ratio|_over_|bytes|allocs")
HIGHER_BETTER_RE = re.compile(
    r"speedup|per_sec\b|per_second|throughput|\bops\b")
# Config/metadata paths that never gate, whatever their spelling.
SKIP_RE = re.compile(r"(?:^|\.)(?:date|repetitions|threads)(?:\.|$)")


def flatten(value, prefix=""):
    """Yields (dotted_path, number) for every numeric leaf."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield prefix, float(value)
    elif isinstance(value, dict):
        # A row list entry like {"op": "counter_add", "enabled_ns": ...}
        # is keyed by its name field rather than its list index, so
        # reordering rows never mispairs metrics.
        for key, child in value.items():
            child_prefix = "%s.%s" % (prefix, key) if prefix else key
            yield from flatten(child, child_prefix)
    elif isinstance(value, list):
        for i, child in enumerate(value):
            label = None
            if isinstance(child, dict):
                for name_key in ("op", "name", "case", "kind"):
                    if isinstance(child.get(name_key), str):
                        label = child[name_key]
                        break
            child_prefix = "%s.%s" % (prefix, label if label is not None
                                      else str(i))
            yield from flatten(child, child_prefix)


def direction(path):
    if LOWER_BETTER_RE.search(path):
        return "lower"
    if HIGHER_BETTER_RE.search(path):
        return "higher"
    return "info"


def compare_one(fresh_path, baseline_dir, threshold):
    """Returns (regressions, notes) for one fresh result file."""
    with open(fresh_path) as f:
        fresh = json.load(f)
    bench = fresh.get("bench")
    if not isinstance(bench, str) or not bench:
        return 0, ["%s: no \"bench\" field; skipped" % fresh_path]
    baseline_path = os.path.join(baseline_dir, "BENCH_%s.json" % bench)
    if not os.path.isfile(baseline_path):
        return 0, ["%s: no committed baseline %s; skipped"
                   % (fresh_path, baseline_path)]
    with open(baseline_path) as f:
        baseline = json.load(f)

    comparable = True
    scale_fresh = fresh.get("bench_scale")
    scale_base = baseline.get("bench_scale")
    if scale_fresh != scale_base:
        comparable = False

    base_metrics = dict(flatten(baseline))
    rows = []
    regressions = 0
    for path, value in flatten(fresh):
        if SKIP_RE.search(path):
            continue
        base = base_metrics.get(path)
        if base is None:
            rows.append((path, None, value, None, "new"))
            continue
        delta = ((value - base) / base * 100.0) if base != 0 else (
            0.0 if value == 0 else float("inf"))
        kind = direction(path)
        if not comparable or kind == "info":
            verdict = "info"
        else:
            bad = delta > threshold if kind == "lower" else -delta > threshold
            good = -delta > threshold if kind == "lower" else delta > threshold
            verdict = "REGRESSED" if bad else ("improved" if good else "ok")
        if verdict == "REGRESSED":
            regressions += 1
        rows.append((path, base, value, delta, verdict))

    header = "== %s vs %s" % (fresh_path, baseline_path)
    if not comparable:
        header += ("  [bench_scale %s != baseline %s — informational only]"
                   % (scale_fresh, scale_base))
    print(header)
    print("%-52s %14s %14s %9s  %s"
          % ("metric", "baseline", "fresh", "delta%", "verdict"))
    for path, base, value, delta, verdict in rows:
        print("%-52s %14s %14.4g %9s  %s"
              % (path,
                 "-" if base is None else "%.4g" % base,
                 value,
                 "-" if delta is None else "%+.1f" % delta,
                 verdict))
    print()
    return regressions, []


def main(argv):
    parser = argparse.ArgumentParser(
        description="diff fresh bench runs against committed baselines")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding BENCH_<bench>.json "
                             "baselines (default: repo root)")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent "
                             "(default: 10)")
    parser.add_argument("fresh", nargs="+",
                        help="fresh bench result JSON files")
    args = parser.parse_args(argv)

    total_regressions = 0
    for fresh_path in args.fresh:
        if not os.path.isfile(fresh_path):
            print("bench_compare: no such file: %s" % fresh_path,
                  file=sys.stderr)
            return 2
        regressions, notes = compare_one(
            fresh_path, args.baseline_dir, args.threshold)
        total_regressions += regressions
        for note in notes:
            print("note: %s" % note)

    if total_regressions:
        print("bench_compare: %d metric(s) regressed beyond %.1f%%"
              % (total_regressions, args.threshold), file=sys.stderr)
        return 1
    print("bench_compare: no regressions beyond %.1f%%" % args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
